package store

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
)

// pageSize is the on-disk page size of the B+-tree.
const pageSize = 4096

// pageCRCOff is where a page's CRC32-C footer lives; the checksum
// covers everything before it. A checksum mismatch on read means a torn
// or corrupted write — recovery rewrites such pages from the WAL.
const pageCRCOff = pageSize - 4

// softPageFill triggers a split when a page's serialised size exceeds
// this fraction of pageSize; keys are bounded by maxKeyLen so one more
// insertion always still fits in the page (payloads are capped at
// pageCRCOff to leave room for the checksum footer).
const softPageFill = pageSize - maxKeyLen - 64

// cacheLimit caps the number of pages kept in memory; beyond it, the
// least-recently-used committed page is evicted (committed dirty pages
// are written back first — their redo images are already in the WAL, so
// an in-place write cannot lose committed state).
const cacheLimit = 2048

// page is the in-memory form of one on-disk page.
type page struct {
	id       uint32
	typ      byte     // pageLeaf or pageBranch
	keys     [][]byte // sorted
	children []uint32 // branch only: len(keys)+1 entries
	next     uint32   // leaf only: right sibling (0 = none)
	dirty    bool     // modified since the last checkpoint
	lru      *list.Element
}

// childIndex returns the index of the child subtree that may contain
// key: the first separator greater than key routes left of it.
func (p *page) childIndex(key []byte) int {
	i := 0
	for i < len(p.keys) && compareBytes(p.keys[i], key) <= 0 {
		i++
	}
	return i
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// overflows reports whether the page's serialised form exceeds the
// split threshold.
func (p *page) overflows() bool { return p.serializedSize() > softPageFill }

func (p *page) serializedSize() int {
	n := 1 + 2 + 4 // type, nkeys, next
	for _, k := range p.keys {
		n += 2 + len(k)
	}
	if p.typ == pageBranch {
		n += 4 * len(p.children)
	}
	return n
}

// serialize renders the page into a pageSize buffer, checksum included.
func (p *page) serialize() ([]byte, error) {
	if sz := p.serializedSize(); sz > pageCRCOff {
		return nil, fmt.Errorf("store: pager: page %d overflows page size (%d bytes)", p.id, sz)
	}
	buf := make([]byte, pageSize)
	buf[0] = p.typ
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(p.keys)))
	binary.LittleEndian.PutUint32(buf[3:], p.next)
	off := 7
	for _, k := range p.keys {
		binary.LittleEndian.PutUint16(buf[off:], uint16(len(k)))
		off += 2
		copy(buf[off:], k)
		off += len(k)
	}
	if p.typ == pageBranch {
		for _, c := range p.children {
			binary.LittleEndian.PutUint32(buf[off:], c)
			off += 4
		}
	}
	binary.LittleEndian.PutUint32(buf[pageCRCOff:], crc32.Checksum(buf[:pageCRCOff], castagnoli))
	return buf, nil
}

// deserialize parses a pageSize buffer into p, verifying the checksum.
func (p *page) deserialize(buf []byte) error {
	if len(buf) != pageSize {
		return fmt.Errorf("store: pager: short page read (%d bytes)", len(buf))
	}
	if want := binary.LittleEndian.Uint32(buf[pageCRCOff:]); crc32.Checksum(buf[:pageCRCOff], castagnoli) != want {
		return fmt.Errorf("store: pager: page %d checksum mismatch (torn write?)", p.id)
	}
	p.typ = buf[0]
	if p.typ != pageLeaf && p.typ != pageBranch {
		return fmt.Errorf("store: pager: page %d has invalid type %d", p.id, p.typ)
	}
	n := int(binary.LittleEndian.Uint16(buf[1:]))
	p.next = binary.LittleEndian.Uint32(buf[3:])
	off := 7
	p.keys = make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if off+2 > pageCRCOff {
			return fmt.Errorf("store: pager: page %d truncated", p.id)
		}
		kl := int(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
		if off+kl > pageCRCOff {
			return fmt.Errorf("store: pager: page %d key overruns page", p.id)
		}
		p.keys = append(p.keys, append([]byte(nil), buf[off:off+kl]...))
		off += kl
	}
	if p.typ == pageBranch {
		p.children = make([]uint32, 0, n+1)
		for i := 0; i <= n; i++ {
			if off+4 > pageCRCOff {
				return fmt.Errorf("store: pager: page %d children overrun page", p.id)
			}
			p.children = append(p.children, binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
	}
	return nil
}

// pager manages the page file and its write-ahead log. Page 0 is the
// metadata page (magic, root id, page count, checkpoint LSN, checksum);
// data pages start at id 1.
//
// Durability protocol (redo-only, no-steal for uncommitted pages):
//
//   - Every Store operation is one transaction. markDirty collects the
//     pages it touches; commit appends their images plus an LSN-stamped
//     commit record to the WAL in a single write, then fsyncs per the
//     policy. The page file is NOT written on the commit path.
//   - Pages modified by an in-flight (uncommitted) transaction are
//     pinned in the cache; eviction may write back committed dirty
//     pages (their redo images are in the WAL) but never uncommitted
//     ones, so the page file never holds uncommitted state.
//   - checkpoint fences the meta page behind the data pages: flush all
//     dirty pages, fsync, write meta (root/npages/LSN), fsync, then
//     truncate the WAL. A crash at any point replays cleanly: before
//     the meta write the old meta plus the WAL reproduce the state;
//     after it the WAL replay is a no-op by LSN comparison.
//   - Open-time recovery (recovery.go) replays the committed WAL
//     prefix and discards the torn tail.
type pager struct {
	f    file
	wal  *wal
	opts Options

	npages uint32 // data pages allocated (excluding meta)
	root   uint32
	lsn    uint64 // last committed LSN
	cache  map[uint32]*page
	order  *list.List       // LRU: front = most recent
	tx     map[uint32]*page // pages dirtied by the in-flight transaction
	ioErr  error            // sticky commit/checkpoint failure

	// Snapshot machinery (snapshot.go). snapMu is a leaf lock guarding
	// the cache map, the LRU list, page write-back and the snapshot
	// registry — the structures snapshot readers touch without holding
	// the tree's writer lock. The writer holds it only for short
	// bookkeeping sections, never across I/O on the commit path.
	//
	// committedRoot/committedNPages are the last committed generation
	// and txUndo holds the committed pre-images of every page the
	// in-flight transaction has dirtied (ids within that generation).
	// Together they let Snapshot() pin the committed generation at any
	// instant — even mid-transaction — without touching the tree's
	// writer lock: a snapshot taken mid-flight starts from the copied
	// txUndo overlay, and markDirty keeps feeding it pre-images for
	// pages dirtied later. snapErr/snapClosed mirror ioErr/closed into
	// snapMu's domain so snapshot creation never reads writer state.
	snapMu          sync.Mutex
	snaps           map[uint64]*snapState
	snapSeq         uint64
	committedRoot   uint32
	committedNPages uint32
	txUndo          map[uint32]*page
	snapErr         error
	snapClosed      bool
}

var (
	pagerMagic   = [8]byte{'K', 'A', 'D', 'O', 'P', 'B', 'T', '2'}
	pagerMagicV1 = [8]byte{'K', 'A', 'D', 'O', 'P', 'B', 'T', '1'}
)

// walPath names the log that pairs with a page file.
func walPath(path string) string { return path + ".wal" }

func openPager(path string, opts Options) (*pager, uint32, error) {
	opts = opts.withDefaults()
	f, err := opts.open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("store: pager: %w", err)
	}
	pg := &pager{
		f: f, opts: opts,
		cache: map[uint32]*page{}, order: list.New(), tx: map[uint32]*page{},
		snaps: map[uint64]*snapState{}, txUndo: map[uint32]*page{},
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("store: pager: %w", err)
	}
	metaValid := false
	if size > 0 {
		meta := make([]byte, pageSize)
		if _, err := f.ReadAt(meta, 0); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("store: pager: read meta: %w", err)
		}
		var magic [8]byte
		copy(magic[:], meta)
		if magic == pagerMagicV1 {
			f.Close()
			return nil, 0, fmt.Errorf("store: pager: %s is a v1 (pre-WAL) kadop btree file; rebuild it by republishing", path)
		}
		if magic == pagerMagic &&
			binary.LittleEndian.Uint32(meta[pageCRCOff:]) == crc32.Checksum(meta[:pageCRCOff], castagnoli) {
			pg.root = binary.LittleEndian.Uint32(meta[8:])
			pg.npages = binary.LittleEndian.Uint32(meta[12:])
			pg.lsn = binary.LittleEndian.Uint64(meta[16:])
			metaValid = true
		}
		// An invalid meta page is not yet fatal: a crash in the middle
		// of a checkpoint's meta write leaves the WAL intact, and the
		// replay below rebuilds both the pages and the meta.
	}
	pg.wal, err = openWAL(walPath(path), opts)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	recovered, err := pg.recover(metaValid)
	if err != nil {
		pg.wal.close()
		f.Close()
		return nil, 0, err
	}
	if size > 0 && !metaValid && !recovered {
		pg.wal.close()
		f.Close()
		return nil, 0, fmt.Errorf("store: pager: %s has a corrupt meta page and no replayable WAL", path)
	}
	pg.committedRoot = pg.root
	pg.committedNPages = pg.npages
	return pg, pg.root, nil
}

// alloc creates a new empty page of the given type.
func (pg *pager) alloc(typ byte) *page {
	pg.npages++
	p := &page{id: pg.npages, typ: typ}
	pg.insertCache(p)
	pg.markDirty(p)
	return p
}

func (pg *pager) setRoot(id uint32) { pg.root = id }

// insertCache adds p to the cache, evicting LRU pages beyond the
// limit. Callers that hold page pointers across allocations (the insert
// path) rely on those pages having been touched during the current
// descent: with cacheLimit far larger than the tree height, pages at
// the LRU front cannot be evicted by the handful of allocations one
// insertion performs.
func (pg *pager) insertCache(p *page) {
	pg.snapMu.Lock()
	defer pg.snapMu.Unlock()
	p.lru = pg.order.PushFront(p)
	pg.cache[p.id] = p
	for len(pg.cache) > cacheLimit {
		if !pg.evictOne() {
			// No evictable victim (or write-back failed): let the cache
			// grow past the limit; the next checkpoint drains it.
			break
		}
	}
}

// evictOne drops the least-recently-used evictable page. Pages touched
// by the in-flight transaction are pinned (the page file must never see
// uncommitted state); committed dirty pages are written back first —
// safe, because their redo images are already in the WAL. Runs with
// snapMu held (via insertCache), so a snapshot reader can never observe
// the window between the write-back and the cache removal and tear a
// concurrent read of the same disk page.
func (pg *pager) evictOne() bool {
	for e := pg.order.Back(); e != nil; e = e.Prev() {
		victim := e.Value.(*page)
		if _, pinned := pg.tx[victim.id]; pinned {
			continue
		}
		if victim.dirty {
			if err := pg.writePage(victim); err != nil {
				return false
			}
		}
		pg.order.Remove(e)
		delete(pg.cache, victim.id)
		return true
	}
	return false
}

// get returns the page with the given id, reading it from disk on a
// cache miss.
func (pg *pager) get(id uint32) (*page, error) {
	if id == 0 || id > pg.npages {
		return nil, fmt.Errorf("store: pager: page id %d out of range (have %d)", id, pg.npages)
	}
	pg.snapMu.Lock()
	if p, ok := pg.cache[id]; ok {
		pg.order.MoveToFront(p.lru)
		pg.snapMu.Unlock()
		return p, nil
	}
	pg.snapMu.Unlock()
	buf := make([]byte, pageSize)
	if _, err := pg.f.ReadAt(buf, int64(id)*pageSize); err != nil {
		return nil, fmt.Errorf("store: pager: read page %d: %w", id, err)
	}
	p := &page{id: id}
	if err := p.deserialize(buf); err != nil {
		return nil, err
	}
	pg.insertCache(p)
	return p, nil
}

// markDirty records p as modified by the in-flight transaction. It
// MUST be called before the first mutation of the page in the
// transaction: on the page's first touch, its current (committed) image
// is stashed — into txUndo, so a snapshot created mid-transaction
// starts from the committed generation, and into the overlay of every
// live snapshot that can reach the page — so readers keep seeing the
// generation they pinned while the writer mutates the live page
// lock-free. The clone is shared between all stashes; snapshot overlays
// are read-only.
func (pg *pager) markDirty(p *page) {
	if _, inTx := pg.tx[p.id]; !inTx {
		var pre *page
		pg.snapMu.Lock()
		if p.id <= pg.committedNPages {
			pre = p.clone()
			pg.txUndo[p.id] = pre
		}
		for _, s := range pg.snaps {
			if p.id <= s.npages {
				if _, ok := s.overlay[p.id]; !ok {
					if pre == nil {
						pre = p.clone()
					}
					s.overlay[p.id] = pre
				}
			}
		}
		pg.snapMu.Unlock()
	}
	p.dirty = true
	pg.tx[p.id] = p
}

// writePage writes one page in place (eviction, checkpoint, recovery).
func (pg *pager) writePage(p *page) error {
	buf, err := p.serialize()
	if err != nil {
		return err
	}
	if _, err := pg.f.WriteAt(buf, int64(p.id)*pageSize); err != nil {
		return fmt.Errorf("store: pager: write page %d: %w", p.id, err)
	}
	p.dirty = false
	return nil
}

// commit makes the in-flight transaction durable: the images of every
// page it touched, fenced by an LSN-stamped commit record, go to the
// WAL in one append. Pages stay dirty in the cache until a checkpoint
// copies them into the page file. A transaction that touched nothing
// commits for free.
func (pg *pager) commit() error {
	if pg.ioErr != nil {
		return pg.ioErr
	}
	if len(pg.tx) == 0 {
		return nil
	}
	var buf []byte
	for _, p := range pg.tx {
		img, err := p.serialize()
		if err != nil {
			return err // nothing appended yet: state stays uncommitted
		}
		var rec [4 + pageSize]byte
		binary.LittleEndian.PutUint32(rec[:], p.id)
		copy(rec[4:], img)
		buf = walAppendRecord(buf, walRecPage, rec[:])
	}
	var cr [walCommitPayload]byte
	binary.LittleEndian.PutUint64(cr[:], pg.lsn+1)
	binary.LittleEndian.PutUint32(cr[8:], pg.root)
	binary.LittleEndian.PutUint32(cr[12:], pg.npages)
	buf = walAppendRecord(buf, walRecCommit, cr[:])
	if err := pg.wal.appendTx(buf); err != nil {
		pg.fail(err)
		return err
	}
	pg.lsn++
	pg.tx = map[uint32]*page{}
	// Publish the new committed generation to the snapshot plane: from
	// here on a snapshot pins this root/page-count, and the undo images
	// of the just-committed transaction are obsolete.
	pg.snapMu.Lock()
	pg.committedRoot = pg.root
	pg.committedNPages = pg.npages
	pg.txUndo = map[uint32]*page{}
	pg.snapMu.Unlock()
	if pg.wal.bytes() >= pg.opts.CheckpointBytes {
		return pg.checkpoint()
	}
	return nil
}

// fail records a sticky commit/checkpoint error, mirrored into the
// snapshot plane so snapshot creation (which runs without the writer
// lock) refuses as well.
func (pg *pager) fail(err error) {
	pg.ioErr = err
	pg.snapMu.Lock()
	pg.snapErr = err
	pg.snapMu.Unlock()
}

// checkpoint copies all committed dirty pages into the page file,
// fences the meta page behind them, and truncates the WAL. Must only
// run at a transaction boundary (pg.tx empty).
func (pg *pager) checkpoint() error {
	if pg.ioErr != nil {
		return pg.ioErr
	}
	if err := pg.checkpointNoTruncate(); err != nil {
		pg.fail(err)
		return err
	}
	if err := pg.wal.reset(); err != nil {
		pg.fail(err)
		return err
	}
	return nil
}

// checkpointNoTruncate is the page-file half of a checkpoint: flush
// dirty pages, fsync, write meta, fsync. The ordering is the crash
// barrier — the meta page (root/npages) becomes visible only after
// every page it points at is durably in place.
func (pg *pager) checkpointNoTruncate() error {
	for _, p := range pg.cache {
		if p.dirty {
			if err := pg.writePage(p); err != nil {
				return err
			}
		}
	}
	if pg.opts.Fsync != FsyncOff {
		if err := pg.f.Sync(); err != nil {
			return fmt.Errorf("store: pager: sync pages: %w", err)
		}
	}
	if err := pg.writeMeta(); err != nil {
		return err
	}
	if pg.opts.Fsync != FsyncOff {
		if err := pg.f.Sync(); err != nil {
			return fmt.Errorf("store: pager: sync meta: %w", err)
		}
	}
	return nil
}

// writeMeta writes the checksummed metadata page.
func (pg *pager) writeMeta() error {
	meta := make([]byte, pageSize)
	copy(meta, pagerMagic[:])
	binary.LittleEndian.PutUint32(meta[8:], pg.root)
	binary.LittleEndian.PutUint32(meta[12:], pg.npages)
	binary.LittleEndian.PutUint64(meta[16:], pg.lsn)
	binary.LittleEndian.PutUint32(meta[pageCRCOff:], crc32.Checksum(meta[:pageCRCOff], castagnoli))
	if _, err := pg.f.WriteAt(meta, 0); err != nil {
		return fmt.Errorf("store: pager: write meta: %w", err)
	}
	return nil
}

func (pg *pager) pageCount() int { return int(pg.npages) }

func (pg *pager) close() error {
	pg.snapMu.Lock()
	pg.snapClosed = true
	pg.snapMu.Unlock()
	err := pg.commit()
	if err == nil {
		err = pg.checkpoint()
	}
	if werr := pg.wal.close(); err == nil {
		err = werr
	}
	if cerr := pg.f.Close(); err == nil {
		err = cerr
	}
	return err
}
