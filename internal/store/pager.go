package store

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"os"
)

// pageSize is the on-disk page size of the B+-tree.
const pageSize = 4096

// softPageFill triggers a split when a page's serialised size exceeds
// this fraction of pageSize; keys are bounded by maxKeyLen so one more
// insertion always still fits in the page.
const softPageFill = pageSize - maxKeyLen - 64

// cacheLimit caps the number of pages kept in memory; beyond it, the
// least-recently-used clean or dirty page is evicted (dirty pages are
// written back first).
const cacheLimit = 2048

// page is the in-memory form of one on-disk page.
type page struct {
	id       uint32
	typ      byte     // pageLeaf or pageBranch
	keys     [][]byte // sorted
	children []uint32 // branch only: len(keys)+1 entries
	next     uint32   // leaf only: right sibling (0 = none)
	dirty    bool
	lru      *list.Element
}

// childIndex returns the index of the child subtree that may contain
// key: the first separator greater than key routes left of it.
func (p *page) childIndex(key []byte) int {
	i := 0
	for i < len(p.keys) && compareBytes(p.keys[i], key) <= 0 {
		i++
	}
	return i
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// overflows reports whether the page's serialised form exceeds the
// split threshold.
func (p *page) overflows() bool { return p.serializedSize() > softPageFill }

func (p *page) serializedSize() int {
	n := 1 + 2 + 4 // type, nkeys, next
	for _, k := range p.keys {
		n += 2 + len(k)
	}
	if p.typ == pageBranch {
		n += 4 * len(p.children)
	}
	return n
}

// serialize renders the page into a pageSize buffer.
func (p *page) serialize() ([]byte, error) {
	if sz := p.serializedSize(); sz > pageSize {
		return nil, fmt.Errorf("store: pager: page %d overflows page size (%d bytes)", p.id, sz)
	}
	buf := make([]byte, pageSize)
	buf[0] = p.typ
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(p.keys)))
	binary.LittleEndian.PutUint32(buf[3:], p.next)
	off := 7
	for _, k := range p.keys {
		binary.LittleEndian.PutUint16(buf[off:], uint16(len(k)))
		off += 2
		copy(buf[off:], k)
		off += len(k)
	}
	if p.typ == pageBranch {
		for _, c := range p.children {
			binary.LittleEndian.PutUint32(buf[off:], c)
			off += 4
		}
	}
	return buf, nil
}

// deserialize parses a pageSize buffer into p.
func (p *page) deserialize(buf []byte) error {
	if len(buf) != pageSize {
		return fmt.Errorf("store: pager: short page read (%d bytes)", len(buf))
	}
	p.typ = buf[0]
	if p.typ != pageLeaf && p.typ != pageBranch {
		return fmt.Errorf("store: pager: page %d has invalid type %d", p.id, p.typ)
	}
	n := int(binary.LittleEndian.Uint16(buf[1:]))
	p.next = binary.LittleEndian.Uint32(buf[3:])
	off := 7
	p.keys = make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if off+2 > pageSize {
			return fmt.Errorf("store: pager: page %d truncated", p.id)
		}
		kl := int(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
		if off+kl > pageSize {
			return fmt.Errorf("store: pager: page %d key overruns page", p.id)
		}
		p.keys = append(p.keys, append([]byte(nil), buf[off:off+kl]...))
		off += kl
	}
	if p.typ == pageBranch {
		p.children = make([]uint32, 0, n+1)
		for i := 0; i <= n; i++ {
			if off+4 > pageSize {
				return fmt.Errorf("store: pager: page %d children overrun page", p.id)
			}
			p.children = append(p.children, binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
	}
	return nil
}

// pager manages the page file: page 0 is the metadata page (magic,
// root id, page count); data pages start at id 1.
type pager struct {
	f      *os.File
	npages uint32 // data pages allocated (excluding meta)
	root   uint32
	cache  map[uint32]*page
	order  *list.List // LRU: front = most recent
	metaD  bool       // meta page dirty
}

var pagerMagic = [8]byte{'K', 'A', 'D', 'O', 'P', 'B', 'T', '1'}

func openPager(path string) (*pager, uint32, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("store: pager: %w", err)
	}
	pg := &pager{f: f, cache: map[uint32]*page{}, order: list.New()}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("store: pager: %w", err)
	}
	if st.Size() == 0 {
		pg.metaD = true
		return pg, 0, nil
	}
	meta := make([]byte, pageSize)
	if _, err := f.ReadAt(meta, 0); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("store: pager: read meta: %w", err)
	}
	var magic [8]byte
	copy(magic[:], meta)
	if magic != pagerMagic {
		f.Close()
		return nil, 0, fmt.Errorf("store: pager: %s is not a kadop btree file", path)
	}
	pg.root = binary.LittleEndian.Uint32(meta[8:])
	pg.npages = binary.LittleEndian.Uint32(meta[12:])
	return pg, pg.root, nil
}

// alloc creates a new empty page of the given type.
func (pg *pager) alloc(typ byte) *page {
	pg.npages++
	p := &page{id: pg.npages, typ: typ, dirty: true}
	pg.insertCache(p)
	pg.metaD = true
	return p
}

func (pg *pager) setRoot(id uint32) {
	pg.root = id
	pg.metaD = true
}

// insertCache adds p to the cache, evicting LRU pages beyond the
// limit. Callers that hold page pointers across allocations (the insert
// path) rely on those pages having been touched during the current
// descent: with cacheLimit far larger than the tree height, pages at
// the LRU front cannot be evicted by the handful of allocations one
// insertion performs.
func (pg *pager) insertCache(p *page) {
	p.lru = pg.order.PushFront(p)
	pg.cache[p.id] = p
	for len(pg.cache) > cacheLimit {
		if err := pg.evictOne(); err != nil {
			// Eviction failure leaves the page cached; surface the error
			// at the next sync instead of losing data here.
			break
		}
	}
}

func (pg *pager) evictOne() error {
	e := pg.order.Back()
	if e == nil {
		return nil
	}
	victim := e.Value.(*page)
	if victim.dirty {
		if err := pg.writePage(victim); err != nil {
			return err
		}
	}
	pg.order.Remove(e)
	delete(pg.cache, victim.id)
	return nil
}

// get returns the page with the given id, reading it from disk on a
// cache miss.
func (pg *pager) get(id uint32) (*page, error) {
	if id == 0 || id > pg.npages {
		return nil, fmt.Errorf("store: pager: page id %d out of range (have %d)", id, pg.npages)
	}
	if p, ok := pg.cache[id]; ok {
		pg.order.MoveToFront(p.lru)
		return p, nil
	}
	buf := make([]byte, pageSize)
	if _, err := pg.f.ReadAt(buf, int64(id)*pageSize); err != nil {
		return nil, fmt.Errorf("store: pager: read page %d: %w", id, err)
	}
	p := &page{id: id}
	if err := p.deserialize(buf); err != nil {
		return nil, err
	}
	pg.insertCache(p)
	return p, nil
}

func (pg *pager) markDirty(p *page) { p.dirty = true }

func (pg *pager) writePage(p *page) error {
	buf, err := p.serialize()
	if err != nil {
		return err
	}
	if _, err := pg.f.WriteAt(buf, int64(p.id)*pageSize); err != nil {
		return fmt.Errorf("store: pager: write page %d: %w", p.id, err)
	}
	p.dirty = false
	return nil
}

// sync writes all dirty pages and the metadata page.
func (pg *pager) sync() error {
	for _, p := range pg.cache {
		if p.dirty {
			if err := pg.writePage(p); err != nil {
				return err
			}
		}
	}
	if pg.metaD {
		meta := make([]byte, pageSize)
		copy(meta, pagerMagic[:])
		binary.LittleEndian.PutUint32(meta[8:], pg.root)
		binary.LittleEndian.PutUint32(meta[12:], pg.npages)
		if _, err := pg.f.WriteAt(meta, 0); err != nil {
			return fmt.Errorf("store: pager: write meta: %w", err)
		}
		pg.metaD = false
	}
	return nil
}

func (pg *pager) pageCount() int { return int(pg.npages) }

func (pg *pager) close() error {
	if err := pg.sync(); err != nil {
		pg.f.Close()
		return err
	}
	return pg.f.Close()
}
