package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"kadop/internal/postings"
	"kadop/internal/sid"
)

func mkPosting(doc int, start uint32) sid.Posting {
	return sid.Posting{Peer: 1, Doc: sid.DocID(doc), SID: sid.SID{Start: start, End: start + 1, Level: 1}}
}

// TestApplyBatchRoundTrip checks batch semantics against the same ops
// applied one by one, for every store — atomically where Batcher is
// implemented (Mem, BTree), op-by-op through the helper otherwise
// (Naive).
func TestApplyBatchRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			rng := rand.New(rand.NewSource(7))
			oracle := NewMem()
			b := NewBatch()
			for i := 0; i < 20; i++ {
				term := fmt.Sprintf("l:t%d", i%5)
				l := randomList(rng, 40)
				b.Append(term, l)
				if err := oracle.Append(term, l); err != nil {
					t.Fatal(err)
				}
			}
			// Delete something appended earlier in the same batch: order
			// within the batch must hold.
			victim := mkPosting(999, 7)
			b.Append("l:t0", postings.List{victim})
			b.Delete("l:t0", victim)
			if b.Len() != 22 {
				t.Fatalf("Len = %d, want 22", b.Len())
			}
			if err := ApplyBatch(s, b); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				term := fmt.Sprintf("l:t%d", i)
				got, err := s.Get(term)
				if err != nil {
					t.Fatal(err)
				}
				want, _ := oracle.Get(term)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: got %d postings, want %d", term, len(got), len(want))
				}
			}
		})
	}
}

// TestApplyBatchRejectsBadOpWholesale: a malformed term anywhere in the
// batch fails the whole batch before any page is touched.
func TestApplyBatchRejectsBadOpWholesale(t *testing.T) {
	bt, err := OpenBTree(filepath.Join(t.TempDir(), "index.bt"))
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	b := NewBatch()
	b.Append("l:good", postings.List{mkPosting(1, 3)})
	b.Append("bad\x00term", postings.List{mkPosting(1, 5)})
	if err := bt.ApplyBatch(b); err == nil {
		t.Fatal("batch with NUL term should fail")
	}
	if n, _ := bt.Count("l:good"); n != 0 {
		t.Fatalf("rejected batch leaked %d postings", n)
	}
}

// TestApplyBatchSingleSync pins the group-commit economics: at
// FsyncAlways, N appends cost N syncs one by one but exactly one as a
// batch.
func TestApplyBatchSingleSync(t *testing.T) {
	const ops = 32
	run := func(batched bool) int64 {
		var count countingState
		opts := Options{Fsync: FsyncAlways, open: countingOpener(&count)}
		bt, err := OpenBTreeOptions(filepath.Join(t.TempDir(), "index.bt"), opts)
		if err != nil {
			t.Fatal(err)
		}
		base := count.syncs
		if batched {
			b := NewBatch()
			for i := 0; i < ops; i++ {
				b.Append(fmt.Sprintf("l:t%d", i%4), postings.List{mkPosting(i, uint32(2*i+1))})
			}
			if err := bt.ApplyBatch(b); err != nil {
				t.Fatal(err)
			}
		} else {
			for i := 0; i < ops; i++ {
				if err := bt.Append(fmt.Sprintf("l:t%d", i%4), postings.List{mkPosting(i, uint32(2*i+1))}); err != nil {
					t.Fatal(err)
				}
			}
		}
		n := count.syncs - base
		if err := bt.Close(); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := run(true); n != 1 {
		t.Fatalf("batched: %d syncs, want 1", n)
	}
	if n := run(false); n != ops {
		t.Fatalf("unbatched: %d syncs, want %d", n, ops)
	}
}

// snapshotters returns the stores that support snapshot reads.
func snapshotters(t *testing.T) map[string]Store {
	t.Helper()
	bt, err := OpenBTreeOptions(filepath.Join(t.TempDir(), "index.bt"),
		Options{Fsync: FsyncOff, CheckpointBytes: 32 << 10}) // checkpoint often under the test
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": NewMem(), "btree": bt}
}

// TestSnapshotPinsGeneration: a snapshot keeps serving the state at its
// creation while the live store moves on, including through deletes and
// whole-term deletes.
func TestSnapshotPinsGeneration(t *testing.T) {
	for name, s := range snapshotters(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			rng := rand.New(rand.NewSource(11))
			before := randomList(rng, 300)
			if err := s.Append("l:a", before); err != nil {
				t.Fatal(err)
			}
			if err := s.Append("l:gone", before[:10].Clone()); err != nil {
				t.Fatal(err)
			}
			snap := SnapshotOf(s)
			if snap == nil {
				t.Fatal("store should support snapshots")
			}
			defer snap.Close()

			// Move the live store well past the snapshot: enough inserts
			// to split pages, plus deletes.
			for i := 0; i < 40; i++ {
				if err := s.Append("l:a", randomList(rng, 100)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Delete("l:a", before[0]); err != nil {
				t.Fatal(err)
			}
			if err := s.DeleteTerm("l:gone"); err != nil {
				t.Fatal(err)
			}

			got, err := snap.Get("l:a")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, before) {
				t.Fatalf("snapshot sees %d postings, want the pinned %d", len(got), len(before))
			}
			if n, _ := snap.Count("l:gone"); n != 10 {
				t.Fatalf("snapshot Count(l:gone) = %d, want 10", n)
			}
			terms, err := snap.Terms()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(terms, []string{"l:a", "l:gone"}) {
				t.Fatalf("snapshot Terms = %v", terms)
			}
			// The live store did move.
			if n, _ := s.Count("l:gone"); n != 0 {
				t.Fatal("live store should have dropped l:gone")
			}
		})
	}
}

// TestSnapshotNeverTearsBatch is the snapshot-isolation property under
// the race detector: a writer applies batches that keep the invariant
// count(l:a) == count(l:b), while readers pin snapshots at arbitrary
// moments. A reader observing unequal counts has seen half a batch.
func TestSnapshotNeverTearsBatch(t *testing.T) {
	for name, s := range snapshotters(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			const rounds = 60
			const readers = 4
			var wg sync.WaitGroup
			errc := make(chan error, readers+1)
			stop := make(chan struct{})

			wg.Add(1)
			go func() {
				defer wg.Done()
				defer close(stop)
				for i := 0; i < rounds; i++ {
					b := NewBatch()
					// Uneven shapes so a torn batch is visible: 3 postings
					// to l:a, 3 to l:b, interleaved as separate ops.
					for j := 0; j < 3; j++ {
						p := mkPosting(i, uint32(2*(i*3+j)+1))
						b.Append("l:a", postings.List{p})
						b.Append("l:b", postings.List{p})
					}
					if err := ApplyBatch(s, b); err != nil {
						errc <- err
						return
					}
				}
			}()
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						snap := SnapshotOf(s)
						if snap == nil {
							errc <- fmt.Errorf("no snapshot")
							return
						}
						na, err := snap.Count("l:a")
						if err != nil {
							snap.Close()
							errc <- err
							return
						}
						nb, err := snap.Count("l:b")
						snap.Close()
						if err != nil {
							errc <- err
							return
						}
						if na != nb {
							errc <- fmt.Errorf("torn batch: count(l:a)=%d count(l:b)=%d", na, nb)
							return
						}
					}
				}()
			}
			wg.Wait()
			select {
			case err := <-errc:
				t.Fatal(err)
			default:
			}
			if na, _ := s.Count("l:a"); na != rounds*3 {
				t.Fatalf("final count(l:a) = %d, want %d", na, rounds*3)
			}
		})
	}
}

// TestCrashTornBatchAllOrNothing: kill the writes at arbitrary byte
// offsets while a multi-term batch commits; recovery must land on the
// pre-batch state or the full post-batch state, never part of the
// batch. This is the batch extension of the per-op crash property.
func TestCrashTornBatchAllOrNothing(t *testing.T) {
	terms := []string{"l:a", "l:b", "w:x"}
	buildBatch := func(rng *rand.Rand) *Batch {
		b := NewBatch()
		for _, term := range terms {
			b.Append(term, randomList(rng, 25))
		}
		return b
	}

	// Dry run: total bytes written by setup + batch.
	dir := t.TempDir()
	var count countingState
	opts := Options{Fsync: FsyncAlways, CheckpointBytes: 16 << 10}
	dryOpts := opts
	dryOpts.open = countingOpener(&count)
	dry, err := openForTest(filepath.Join(dir, "dry.bt"), dryOpts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	seedList := randomList(rng, 50)
	if err := dry.Append("l:a", seedList); err != nil {
		t.Fatal(err)
	}
	if err := dry.ApplyBatch(buildBatch(rng)); err != nil {
		t.Fatal(err)
	}
	if err := dry.Close(); err != nil {
		t.Fatal(err)
	}

	trials := crashTrials(t, 48)
	step := count.written / int64(trials)
	if step < 1 {
		step = 1
	}
	for crashAt := step; crashAt <= count.written; crashAt += step {
		rng := rand.New(rand.NewSource(99)) // same postings every trial
		seedList := randomList(rng, 50)
		batch := buildBatch(rng)

		committed := NewMem()
		withBatch := NewMem()
		committed.Append("l:a", seedList)
		withBatch.Append("l:a", seedList)
		ApplyBatch(withBatch, batch)

		st := &crashState{budget: crashAt}
		crashOpts := opts
		crashOpts.open = crashOpener(st)
		path := filepath.Join(dir, fmt.Sprintf("crash%d.bt", crashAt))
		bt, err := openForTest(path, crashOpts)
		seeded, batchDone := false, false
		if err == nil {
			if err := bt.Append("l:a", seedList); err == nil {
				seeded = true
				if err := bt.ApplyBatch(batch); err == nil {
					batchDone = true
				}
			}
			// Abandon without Close: the process died.
		}
		rec, err := openForTest(path, opts)
		if err != nil {
			t.Fatalf("crash@%d: recovery open: %v", crashAt, err)
		}
		checkInvariants(t, rec)
		// Oracles for the states recovery may land on: nothing, the
		// seed, or seed+batch. The op in flight at the crash may have
		// committed just before the kill, so both sides stay allowed.
		for _, term := range terms {
			got, err := rec.Get(term)
			if err != nil {
				t.Fatalf("crash@%d: get %q: %v", crashAt, term, err)
			}
			wantSeed, _ := committed.Get(term)
			wantBatch, _ := withBatch.Get(term)
			okEmpty := len(got) == 0 && !batchDone && (!seeded || term != "l:a")
			okSeed := reflect.DeepEqual(got, wantSeed)
			okBatch := reflect.DeepEqual(got, wantBatch)
			if !okEmpty && !okSeed && !okBatch {
				t.Fatalf("crash@%d: term %q: recovered %d postings (seeded=%v batchDone=%v): torn batch",
					crashAt, term, len(got), seeded, batchDone)
			}
			// The core atomicity check: a partially applied batch would
			// show l:b non-empty while w:x is empty (map iteration aside,
			// both arrive in the same transaction), or a shorter list.
		}
		// All-or-nothing across terms: either every batch-only term is
		// at its full batch size, or every one is empty.
		nb, _ := rec.Count("l:b")
		nx, _ := rec.Count("w:x")
		wb, _ := withBatch.Count("l:b")
		wx, _ := withBatch.Count("w:x")
		if !((nb == 0 && nx == 0) || (nb == wb && nx == wx)) {
			t.Fatalf("crash@%d: partial batch: l:b=%d/%d w:x=%d/%d", crashAt, nb, wb, nx, wx)
		}
		// An acknowledged batch (FsyncAlways) must survive in full.
		if batchDone && (nb != wb || nx != wx) {
			t.Fatalf("crash@%d: acknowledged batch lost: l:b=%d/%d w:x=%d/%d", crashAt, nb, wb, nx, wx)
		}
		rec.Close()
	}
}

// TestCoalescerGroupsConcurrentWrites: concurrent appends through the
// coalescer all land and are visible to their callers on return, and
// the store syncs far fewer times than once per op.
func TestCoalescerGroupsConcurrentWrites(t *testing.T) {
	var count countingState
	bt, err := OpenBTreeOptions(filepath.Join(t.TempDir(), "index.bt"),
		Options{Fsync: FsyncAlways, open: countingOpener(&count)})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoalescer(bt, CoalesceOptions{})
	const writers = 8
	const perWriter = 30
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				p := mkPosting(w, uint32(2*(w*perWriter+i)+1))
				if err := c.Append(fmt.Sprintf("l:w%d", w), postings.List{p}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		if n, err := c.Count(fmt.Sprintf("l:w%d", w)); err != nil || n != perWriter {
			t.Fatalf("writer %d: count=%d err=%v, want %d", w, n, err, perWriter)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Count("l:w0"); err == nil {
		t.Fatal("closed coalescer should reject reads via inner store")
	}
	// Not asserting an exact sync count (scheduling-dependent), but the
	// coalescer must have batched at least some of the 240 ops.
	if count.syncs >= writers*perWriter {
		t.Fatalf("no batching happened: %d syncs for %d ops", count.syncs, writers*perWriter)
	}
}

// TestCoalescerFallsBackPerOp: a bad op rejects only itself; batch
// peers still land.
func TestCoalescerFallsBackPerOp(t *testing.T) {
	bt, err := OpenBTree(filepath.Join(t.TempDir(), "index.bt"))
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoalescer(bt, CoalesceOptions{MaxDelay: 5 * time.Millisecond}) // let both ops meet in one batch
	defer c.Close()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = c.Append("l:good", postings.List{mkPosting(1, 3)}) }()
	go func() { defer wg.Done(); errs[1] = c.Append("bad\x00term", postings.List{mkPosting(1, 5)}) }()
	wg.Wait()
	if errs[0] != nil {
		t.Fatalf("good op failed: %v", errs[0])
	}
	if errs[1] == nil {
		t.Fatal("bad op should fail")
	}
	if n, _ := c.Count("l:good"); n != 1 {
		t.Fatalf("good op did not land: count=%d", n)
	}
}

// TestCoalescerDeleteTermOrders: a DeleteTerm queued after appends of
// the same term applies after them.
func TestCoalescerDeleteTermOrders(t *testing.T) {
	c := NewCoalescer(NewMem(), CoalesceOptions{})
	defer c.Close()
	if err := c.Append("l:a", postings.List{mkPosting(1, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteTerm("l:a"); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.Count("l:a"); n != 0 {
		t.Fatalf("count after DeleteTerm = %d", n)
	}
}

// TestMemScanAllocs pins the lazy-scan fix: stopping after one posting
// of a 10k list must not clone the whole tail (which allocated O(list)
// per call before).
func TestMemScanAllocs(t *testing.T) {
	m := NewMem()
	rng := rand.New(rand.NewSource(3))
	if err := m.Append("l:big", randomList(rng, 10000)); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		n := 0
		m.Scan("l:big", sid.MinPosting, func(sid.Posting) bool {
			n++
			return n < 2
		})
	})
	// The closure escapes, so allow a couple of fixed allocations — but
	// nothing proportional to the 10k-posting list.
	if allocs > 4 {
		t.Fatalf("Scan allocates %.0f objects per call; early-stopped scans must not clone the tail", allocs)
	}
}

// TestNaiveTermsSkipsStrayEntries pins the Terms fix: non-.gz directory
// entries (tempfiles, editor droppings, subdirectories) are not terms.
func TestNaiveTermsSkipsStrayEntries(t *testing.T) {
	dir := t.TempDir()
	nv, err := NewNaive(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer nv.Close()
	if err := nv.Append("l:author", postings.List{mkPosting(1, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stray.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "subdir"), 0o755); err != nil {
		t.Fatal(err)
	}
	terms, err := nv.Terms()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(terms, []string{"l:author"}) {
		t.Fatalf("Terms = %v, want [l:author] only", terms)
	}
}

// TestNaivePercentEscapeCollision pins the path fix: a term containing
// a literal "%2F" must not share a file with a term containing "/".
func TestNaivePercentEscapeCollision(t *testing.T) {
	nv, err := NewNaive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer nv.Close()
	pa, pb := mkPosting(1, 3), mkPosting(2, 5)
	if err := nv.Append("l:a%2Fb", postings.List{pa}); err != nil {
		t.Fatal(err)
	}
	if err := nv.Append("l:a/b", postings.List{pb}); err != nil {
		t.Fatal(err)
	}
	ga, err := nv.Get("l:a%2Fb")
	if err != nil {
		t.Fatal(err)
	}
	gb, err := nv.Get("l:a/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(ga) != 1 || ga[0] != pa {
		t.Fatalf("l:a%%2Fb = %v, want [%v]: the two terms collided on disk", ga, pa)
	}
	if len(gb) != 1 || gb[0] != pb {
		t.Fatalf("l:a/b = %v, want [%v]", gb, pb)
	}
	terms, err := nv.Terms()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(terms, []string{"l:a%2Fb", "l:a/b"}) {
		t.Fatalf("Terms = %v", terms)
	}
}
