package store

import (
	"errors"
	"sort"

	"kadop/internal/postings"
	"kadop/internal/sid"
)

// Batch collects many Append/Delete operations so a store can make them
// durable as ONE transaction: a single WAL append fenced by a single
// commit record, and therefore a single fsync at FsyncAlways — the
// group commit that turns N per-op syncs into one. Batches are built by
// one goroutine (or behind the Coalescer's lock) and are not safe for
// concurrent mutation.
type Batch struct {
	ops []batchOp
}

// batchOp is one queued operation. A nil ps with del=false is never
// queued (empty appends are dropped at the door).
type batchOp struct {
	del  bool
	term string
	ps   postings.List // append payload
	p    sid.Posting   // delete target
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Append queues postings for the term. The list is NOT cloned; the
// caller must not mutate it afterwards. Empty lists are dropped.
func (b *Batch) Append(term string, ps postings.List) {
	if len(ps) == 0 {
		return
	}
	b.ops = append(b.ops, batchOp{term: term, ps: ps})
}

// Delete queues removal of one posting from the term's list.
func (b *Batch) Delete(term string, p sid.Posting) {
	b.ops = append(b.ops, batchOp{del: true, term: term, p: p})
}

// Len reports the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Postings reports the total postings queued for append, for load
// accounting and batch-size bounds.
func (b *Batch) Postings() int {
	n := 0
	for _, op := range b.ops {
		n += len(op.ps)
	}
	return n
}

// Batcher is implemented by stores that can apply a whole batch as one
// atomic, single-fsync transaction. A crash during ApplyBatch must
// recover to all of the batch or none of it.
type Batcher interface {
	ApplyBatch(b *Batch) error
}

// ApplyBatch applies b to st: atomically in one transaction when st
// implements Batcher, op by op otherwise (same end state, per-op
// durability cost, no atomicity). A nil or empty batch is a no-op.
func ApplyBatch(st Store, b *Batch) error {
	if b == nil || len(b.ops) == 0 {
		return nil
	}
	if bs, ok := st.(Batcher); ok {
		return bs.ApplyBatch(b)
	}
	for _, op := range b.ops {
		var err error
		if op.del {
			err = st.Delete(op.term, op.p)
		} else {
			err = st.Append(op.term, op.ps)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Snapshot is a read-only view of a store pinned at one committed
// generation. Reads through a snapshot never block behind writers and
// never observe a later write — in particular they cannot see half of
// an in-flight batch. Close releases the pin; after Close the snapshot
// must not be used. A Snapshot is safe for concurrent readers.
type Snapshot interface {
	Get(term string) (postings.List, error)
	Scan(term string, from sid.Posting, fn func(sid.Posting) bool) error
	Count(term string) (int, error)
	Terms() ([]string, error)
	Close() error
}

// Snapshotter is implemented by stores that support snapshot reads.
type Snapshotter interface {
	Snapshot() (Snapshot, error)
}

// errNoSnapshot is returned by wrapper stores whose inner store does
// not implement Snapshotter.
var errNoSnapshot = errors.New("store: snapshots not supported")

// SnapshotOf pins a snapshot of st when the store supports it and
// returns nil otherwise (including when pinning fails, e.g. on a closed
// store — the caller's fallback read path will surface that error).
// Callers must Close a non-nil snapshot.
func SnapshotOf(st Store) Snapshot {
	ss, ok := st.(Snapshotter)
	if !ok {
		return nil
	}
	snap, err := ss.Snapshot()
	if err != nil {
		return nil
	}
	return snap
}

// ---- Mem --------------------------------------------------------------

// ApplyBatch implements Batcher: all ops land under one lock hold, so a
// concurrent reader (or snapshot taken before/after) sees none or all
// of the batch.
func (m *Mem) ApplyBatch(b *Batch) error {
	if b == nil || len(b.ops) == 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, op := range b.ops {
		if op.del {
			m.deleteLocked(op.term, op.p)
		} else {
			m.appendLocked(op.term, op.ps)
		}
	}
	return nil
}

// Snapshot implements Snapshotter. Mem's posting slices are immutable
// once published (Append replaces or extends past the snapshot's
// length, Delete copies), so the snapshot is a zero-copy map of slice
// headers.
func (m *Mem) Snapshot() (Snapshot, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	lists := make(map[string]postings.List, len(m.lists))
	for t, l := range m.lists {
		lists[t] = l
	}
	return &memSnap{lists: lists}, nil
}

// memSnap is a point-in-time view of a Mem store.
type memSnap struct {
	lists map[string]postings.List
}

func (s *memSnap) Get(term string) (postings.List, error) {
	return s.lists[term].Clone(), nil
}

func (s *memSnap) Scan(term string, from sid.Posting, fn func(sid.Posting) bool) error {
	l := s.lists[term]
	i := sort.Search(len(l), func(i int) bool { return l[i].Compare(from) >= 0 })
	for _, p := range l[i:] {
		if !fn(p) {
			return nil
		}
	}
	return nil
}

func (s *memSnap) Count(term string) (int, error) { return len(s.lists[term]), nil }

func (s *memSnap) Terms() ([]string, error) {
	out := make([]string, 0, len(s.lists))
	for t := range s.lists {
		out = append(out, t)
	}
	sort.Strings(out)
	return out, nil
}

func (s *memSnap) Close() error { return nil }
