package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"kadop/internal/postings"
	"kadop/internal/sid"
)

// stores returns one instance of every Store implementation, named.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	bt, err := OpenBTree(filepath.Join(t.TempDir(), "index.bt"))
	if err != nil {
		t.Fatal(err)
	}
	nv, err := NewNaive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": NewMem(), "btree": bt, "naive": nv}
}

func randomList(rng *rand.Rand, n int) postings.List {
	l := make(postings.List, n)
	for i := range l {
		start := uint32(rng.Intn(10000) + 1)
		l[i] = sid.Posting{
			Peer: sid.PeerID(rng.Intn(10)),
			Doc:  sid.DocID(rng.Intn(100)),
			SID:  sid.SID{Start: start, End: start + uint32(rng.Intn(50)) + 1, Level: uint16(rng.Intn(10))},
		}
	}
	l.Sort()
	return l.Dedup()
}

func TestStoreBasicRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			rng := rand.New(rand.NewSource(1))
			want := randomList(rng, 500)
			if err := s.Append("l:author", want); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get("l:author")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("Get = %d postings, want %d", len(got), len(want))
			}
			n, err := s.Count("l:author")
			if err != nil || n != len(want) {
				t.Fatalf("Count = %d (%v), want %d", n, err, len(want))
			}
			if got, _ := s.Get("l:absent"); len(got) != 0 {
				t.Fatal("absent term should be empty")
			}
		})
	}
}

func TestStoreAppendMergesOutOfOrder(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			rng := rand.New(rand.NewSource(2))
			full := randomList(rng, 300)
			// Append in shuffled chunks: result must still be sorted.
			idx := rng.Perm(len(full))
			for i := 0; i < len(idx); i += 37 {
				end := i + 37
				if end > len(idx) {
					end = len(idx)
				}
				var chunk postings.List
				for _, j := range idx[i:end] {
					chunk = append(chunk, full[j])
				}
				if err := s.Append("w:xml", chunk); err != nil {
					t.Fatal(err)
				}
			}
			got, err := s.Get("w:xml")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, full) {
				t.Fatalf("merged list mismatch: %d vs %d postings", len(got), len(full))
			}
		})
	}
}

func TestStoreScanFrom(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			rng := rand.New(rand.NewSource(3))
			l := randomList(rng, 200)
			if err := s.Append("l:title", l); err != nil {
				t.Fatal(err)
			}
			from := l[len(l)/2]
			var got postings.List
			if err := s.Scan("l:title", from, func(p sid.Posting) bool {
				got = append(got, p)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			want := l[len(l)/2:]
			if !reflect.DeepEqual(got, postings.List(want)) {
				t.Fatalf("Scan from middle: %d vs %d", len(got), len(want))
			}
			// Early stop.
			n := 0
			s.Scan("l:title", sid.MinPosting, func(sid.Posting) bool {
				n++
				return n < 10
			})
			if n != 10 {
				t.Fatalf("early stop scanned %d", n)
			}
		})
	}
}

func TestStoreDelete(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			rng := rand.New(rand.NewSource(4))
			l := randomList(rng, 100)
			if err := s.Append("l:x", l); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete("l:x", l[10]); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete("l:x", sid.Posting{Peer: 99, Doc: 99, SID: sid.SID{Start: 1, End: 2}}); err != nil {
				t.Fatal("deleting absent posting should not error:", err)
			}
			got, _ := s.Get("l:x")
			if len(got) != len(l)-1 {
				t.Fatalf("after delete: %d postings", len(got))
			}
			for _, p := range got {
				if p == l[10] {
					t.Fatal("deleted posting still present")
				}
			}
			if err := s.DeleteTerm("l:x"); err != nil {
				t.Fatal(err)
			}
			if n, _ := s.Count("l:x"); n != 0 {
				t.Fatalf("after DeleteTerm: %d postings", n)
			}
		})
	}
}

func TestStoreTerms(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			p := postings.List{{Peer: 1, Doc: 1, SID: sid.SID{Start: 1, End: 2, Level: 0}}}
			for _, term := range []string{"l:title", "l:author", "w:xml"} {
				if err := s.Append(term, p); err != nil {
					t.Fatal(err)
				}
			}
			terms, err := s.Terms()
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"l:author", "l:title", "w:xml"}
			if !reflect.DeepEqual(terms, want) {
				t.Fatalf("Terms = %v, want %v", terms, want)
			}
		})
	}
}

func TestStoreManyTermsInterleaved(t *testing.T) {
	for name, s := range stores(t) {
		if name == "naive" {
			continue // too slow by design; covered by smaller tests
		}
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			rng := rand.New(rand.NewSource(5))
			want := map[string]postings.List{}
			for round := 0; round < 30; round++ {
				for term := 0; term < 20; term++ {
					key := fmt.Sprintf("l:t%02d", term)
					chunk := randomList(rng, 20)
					if err := s.Append(key, chunk); err != nil {
						t.Fatal(err)
					}
					want[key] = postings.Merge(want[key], chunk)
				}
			}
			for key, w := range want {
				w = w.Dedup()
				got, err := s.Get(key)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, w) {
					t.Fatalf("%s: %d vs %d postings", key, len(got), len(w))
				}
			}
		})
	}
}

func TestBTreePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.bt")
	bt, err := OpenBTree(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	want := randomList(rng, 2000)
	if err := bt.Append("l:author", want); err != nil {
		t.Fatal(err)
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
	bt2, err := OpenBTree(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bt2.Close()
	got, err := bt2.Get("l:author")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened tree: %d vs %d postings", len(got), len(want))
	}
}

func TestBTreeLargeLoadSplitsPages(t *testing.T) {
	bt, err := OpenBTree(filepath.Join(t.TempDir(), "big.bt"))
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	// Enough sequential postings to force multi-level splits.
	var l postings.List
	for i := 0; i < 30000; i++ {
		s := uint32(2*i + 1)
		l = append(l, sid.Posting{Peer: 1, Doc: sid.DocID(i / 100), SID: sid.SID{Start: s, End: s + 1, Level: 3}})
	}
	if err := bt.Append("l:author", l); err != nil {
		t.Fatal(err)
	}
	pages, height := bt.Stats()
	if height < 2 {
		t.Errorf("expected a multi-level tree, height = %d", height)
	}
	if pages < 10 {
		t.Errorf("expected many pages, got %d", pages)
	}
	n, err := bt.Count("l:author")
	if err != nil || n != len(l) {
		t.Fatalf("Count = %d (%v), want %d", n, err, len(l))
	}
	// Order preserved across splits.
	got, err := bt.Get("l:author")
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatal("large load round trip mismatch")
	}
}

func TestBTreeRejectsBadTerms(t *testing.T) {
	bt, err := OpenBTree(filepath.Join(t.TempDir(), "x.bt"))
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	p := postings.List{{Peer: 1, Doc: 1, SID: sid.SID{Start: 1, End: 2, Level: 0}}}
	if err := bt.Append("", p); err == nil {
		t.Error("empty term should be rejected")
	}
	if err := bt.Append("bad\x00term", p); err == nil {
		t.Error("NUL in term should be rejected")
	}
}

func TestBTreeRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-btree")
	if err := writeJunk(path); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBTree(path); err == nil {
		t.Fatal("foreign file should be rejected")
	}
}

func writeJunk(path string) error {
	junk := make([]byte, pageSize)
	for i := range junk {
		junk[i] = byte(i)
	}
	return writeFile(path, junk)
}

func TestStoreAppendEmpty(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if err := s.Append("l:x", nil); err != nil {
				t.Fatal(err)
			}
			if n, _ := s.Count("l:x"); n != 0 {
				t.Fatal("empty append created postings")
			}
		})
	}
}

func TestKeyCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		p := randomList(rng, 1)[0]
		term := fmt.Sprintf("l:term%d", rng.Intn(50))
		k, err := encodeKey(term, p)
		if err != nil {
			t.Fatal(err)
		}
		gt, gp, err := decodeKey(k)
		if err != nil {
			t.Fatal(err)
		}
		if gt != term || gp != p {
			t.Fatalf("round trip: %q %v -> %q %v", term, p, gt, gp)
		}
	}
	if _, _, err := decodeKey([]byte("nonsense")); err == nil {
		t.Error("malformed key should be rejected")
	}
}

func TestKeyOrderMatchesPostingOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := randomList(rng, 300)
	for i := 1; i < len(l); i++ {
		a, _ := encodeKey("l:x", l[i-1])
		b, _ := encodeKey("l:x", l[i])
		if compareBytes(a, b) >= 0 {
			t.Fatalf("key order violates posting order at %d: %v vs %v", i, l[i-1], l[i])
		}
	}
}

func writeFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
