package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"kadop/internal/postings"
	"kadop/internal/sid"
)

// BTree is a page-based disk B+-tree storing composite
// (term, posting) keys, so each term's postings form one contiguous,
// ordered key range — the clustered organisation the paper adopts from
// BerkeleyDB. It is a key-only tree: the key encodes everything.
//
// Pages are 4 KiB. Leaves are chained left-to-right for range scans.
// Deleted keys leave pages in place (no rebalancing); a store serving a
// KadoP peer treats document modification as delete + insert, and
// reclaims space by periodic rebuild if ever needed.
type BTree struct {
	mu     sync.Mutex
	pager  *pager
	root   uint32
	closed bool
}

const (
	pageLeaf   = 1
	pageBranch = 2
	maxKeyLen  = 1024
)

// ErrClosed is returned by every Store method called after Close (and
// by a second Close). Before this guard existed, operations on a
// closed tree leaked raw OS errors from the closed file descriptor.
var ErrClosed = errors.New("store: btree is closed")

// OpenBTree opens (or creates) a B+-tree file at path with default
// durability options (WAL fsynced on every operation).
func OpenBTree(path string) (*BTree, error) {
	return OpenBTreeOptions(path, Options{})
}

// OpenBTreeOptions is OpenBTree with explicit durability tuning. Open
// runs crash recovery first: the committed prefix of the write-ahead
// log is replayed onto the page file and any torn tail is discarded, so
// a tree that crashed mid-write reopens to its last committed state.
func OpenBTreeOptions(path string, opts Options) (*BTree, error) {
	pg, root, err := openPager(path, opts)
	if err != nil {
		return nil, err
	}
	t := &BTree{pager: pg, root: root}
	if root == 0 {
		// Fresh file: allocate an empty leaf as root.
		leaf := pg.alloc(pageLeaf)
		t.root = leaf.id
		pg.setRoot(leaf.id)
		if err := pg.commit(); err != nil {
			pg.close()
			return nil, err
		}
	}
	return t, nil
}

// encodeKey builds the composite key: term bytes, a zero separator, and
// the posting in fixed-width big-endian form so that byte order equals
// the canonical posting order.
func encodeKey(term string, p sid.Posting) ([]byte, error) {
	if len(term) == 0 || len(term) > maxKeyLen-32 {
		return nil, fmt.Errorf("store: btree: bad term length %d", len(term))
	}
	for i := 0; i < len(term); i++ {
		if term[i] == 0 {
			return nil, fmt.Errorf("store: btree: term contains NUL byte")
		}
	}
	k := make([]byte, 0, len(term)+1+18)
	k = append(k, term...)
	k = append(k, 0)
	var buf [18]byte
	binary.BigEndian.PutUint32(buf[0:], uint32(p.Peer))
	binary.BigEndian.PutUint32(buf[4:], uint32(p.Doc))
	binary.BigEndian.PutUint32(buf[8:], p.SID.Start)
	binary.BigEndian.PutUint32(buf[12:], p.SID.End)
	binary.BigEndian.PutUint16(buf[16:], p.SID.Level)
	return append(k, buf[:]...), nil
}

// decodeKey splits a composite key back into term and posting.
func decodeKey(k []byte) (string, sid.Posting, error) {
	sep := bytes.IndexByte(k, 0)
	if sep < 0 || len(k) != sep+1+18 {
		return "", sid.Posting{}, fmt.Errorf("store: btree: malformed key of %d bytes", len(k))
	}
	b := k[sep+1:]
	p := sid.Posting{
		Peer: sid.PeerID(binary.BigEndian.Uint32(b[0:])),
		Doc:  sid.DocID(binary.BigEndian.Uint32(b[4:])),
		SID: sid.SID{
			Start: binary.BigEndian.Uint32(b[8:]),
			End:   binary.BigEndian.Uint32(b[12:]),
			Level: binary.BigEndian.Uint16(b[16:]),
		},
	}
	return string(k[:sep]), p, nil
}

// termPrefix is the key prefix shared by all postings of a term.
func termPrefix(term string) []byte {
	k := make([]byte, 0, len(term)+1)
	k = append(k, term...)
	return append(k, 0)
}

// Append implements Store: each posting is one B+-tree insertion,
// O(log N), independent of the term's existing list size.
func (t *BTree) Append(term string, ps postings.List) error {
	if len(ps) == 0 {
		return nil
	}
	add := ps.Clone()
	add.Sort()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	for _, p := range add {
		k, err := encodeKey(term, p)
		if err != nil {
			return err
		}
		if err := t.insert(k); err != nil {
			return err
		}
	}
	return t.pager.commit()
}

// insert adds key to the tree, splitting pages as needed.
func (t *BTree) insert(key []byte) error {
	// Descend, remembering the path for split propagation.
	type pathEntry struct {
		page *page
		idx  int // child index taken
	}
	var path []pathEntry
	cur, err := t.pager.get(t.root)
	if err != nil {
		return err
	}
	for cur.typ == pageBranch {
		i := cur.childIndex(key)
		path = append(path, pathEntry{cur, i})
		cur, err = t.pager.get(cur.children[i])
		if err != nil {
			return err
		}
	}
	// Insert into leaf (duplicates are idempotent: a term posting is a
	// set member). markDirty precedes the mutation: it stashes the
	// page's committed image for live snapshots (copy-on-write).
	i := sort.Search(len(cur.keys), func(i int) bool { return bytes.Compare(cur.keys[i], key) >= 0 })
	if i < len(cur.keys) && bytes.Equal(cur.keys[i], key) {
		return nil
	}
	t.pager.markDirty(cur)
	cur.keys = append(cur.keys, nil)
	copy(cur.keys[i+1:], cur.keys[i:])
	cur.keys[i] = append([]byte(nil), key...)

	// Split up the path while pages overflow.
	for cur.overflows() {
		right, sep := t.split(cur)
		if len(path) == 0 {
			// Grow a new root (fresh page: alloc already marked it).
			nr := t.pager.alloc(pageBranch)
			nr.keys = [][]byte{sep}
			nr.children = []uint32{cur.id, right.id}
			t.root = nr.id
			t.pager.setRoot(nr.id)
			return nil
		}
		parent := path[len(path)-1]
		path = path[:len(path)-1]
		p := parent.page
		i := parent.idx
		t.pager.markDirty(p)
		p.keys = append(p.keys, nil)
		copy(p.keys[i+1:], p.keys[i:])
		p.keys[i] = sep
		p.children = append(p.children, 0)
		copy(p.children[i+2:], p.children[i+1:])
		p.children[i+1] = right.id
		cur = p
	}
	return nil
}

// split divides an overflowing page in two and returns the new right
// sibling and the separator key (smallest key routed to the right).
func (t *BTree) split(p *page) (*page, []byte) {
	// Mark p before moving keys out of it (copy-on-write pre-image);
	// right is fresh, so alloc's markDirty suffices for it.
	t.pager.markDirty(p)
	right := t.pager.alloc(p.typ)
	mid := len(p.keys) / 2
	var sep []byte
	if p.typ == pageLeaf {
		right.keys = append(right.keys, p.keys[mid:]...)
		p.keys = p.keys[:mid]
		sep = append([]byte(nil), right.keys[0]...)
		right.next = p.next
		p.next = right.id
	} else {
		// Branch: the middle key moves up, not right.
		sep = append([]byte(nil), p.keys[mid]...)
		right.keys = append(right.keys, p.keys[mid+1:]...)
		right.children = append(right.children, p.children[mid+1:]...)
		p.keys = p.keys[:mid]
		p.children = p.children[:mid+1]
	}
	return right, sep
}

// seek returns the leaf containing the first key >= key and that key's
// index within the leaf (which may be len(keys) if past the end).
func (t *BTree) seek(key []byte) (*page, int, error) {
	cur, err := t.pager.get(t.root)
	if err != nil {
		return nil, 0, err
	}
	for cur.typ == pageBranch {
		cur, err = t.pager.get(cur.children[cur.childIndex(key)])
		if err != nil {
			return nil, 0, err
		}
	}
	i := sort.Search(len(cur.keys), func(i int) bool { return bytes.Compare(cur.keys[i], key) >= 0 })
	return cur, i, nil
}

// Scan implements Store.
func (t *BTree) Scan(term string, from sid.Posting, fn func(sid.Posting) bool) error {
	start, err := encodeKey(term, from)
	if err != nil {
		return err
	}
	prefix := termPrefix(term)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	leaf, i, err := t.seek(start)
	if err != nil {
		return err
	}
	for {
		for ; i < len(leaf.keys); i++ {
			k := leaf.keys[i]
			if !bytes.HasPrefix(k, prefix) {
				return nil
			}
			_, p, err := decodeKey(k)
			if err != nil {
				return err
			}
			if !fn(p) {
				return nil
			}
		}
		if leaf.next == 0 {
			return nil
		}
		leaf, err = t.pager.get(leaf.next)
		if err != nil {
			return err
		}
		i = 0
	}
}

// Get implements Store.
func (t *BTree) Get(term string) (postings.List, error) {
	var out postings.List
	err := t.Scan(term, sid.MinPosting, func(p sid.Posting) bool {
		out = append(out, p)
		return true
	})
	return out, err
}

// Count implements Store.
func (t *BTree) Count(term string) (int, error) {
	n := 0
	err := t.Scan(term, sid.MinPosting, func(sid.Posting) bool { n++; return true })
	return n, err
}

// Delete implements Store. Underflowing pages are left in place.
func (t *BTree) Delete(term string, p sid.Posting) error {
	key, err := encodeKey(term, p)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if _, err := t.deleteKey(key); err != nil {
		return err
	}
	return t.pager.commit()
}

// deleteKey removes one key if present (no commit). The markDirty
// precedes the splice so live snapshots keep the pre-image, and the
// splice rebuilds the pointer array instead of shifting in place —
// snapshot clones share it.
func (t *BTree) deleteKey(key []byte) (bool, error) {
	leaf, i, err := t.seek(key)
	if err != nil {
		return false, err
	}
	if i >= len(leaf.keys) || !bytes.Equal(leaf.keys[i], key) {
		return false, nil
	}
	t.pager.markDirty(leaf)
	nk := make([][]byte, 0, len(leaf.keys)-1)
	nk = append(nk, leaf.keys[:i]...)
	nk = append(nk, leaf.keys[i+1:]...)
	leaf.keys = nk
	return true, nil
}

// DeleteTerm implements Store by deleting the term's key range as ONE
// transaction: every matching key is removed under a single lock hold
// and a single pager commit, so a crash mid-way leaves either the whole
// term or none of it — never a partially deleted posting list. (The
// previous implementation issued one commit per posting; the
// crash-injection property test caught the partial states it left
// behind.)
func (t *BTree) DeleteTerm(term string) error {
	prefix := termPrefix(term)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	leaf, i, err := t.seek(prefix)
	if err != nil {
		return err
	}
	deleted := false
	for {
		j := i
		for j < len(leaf.keys) && bytes.HasPrefix(leaf.keys[j], prefix) {
			j++
		}
		if j > i {
			t.pager.markDirty(leaf)
			nk := make([][]byte, 0, len(leaf.keys)-(j-i))
			nk = append(nk, leaf.keys[:i]...)
			nk = append(nk, leaf.keys[j:]...)
			leaf.keys = nk
			deleted = true
		}
		if i < len(leaf.keys) || leaf.next == 0 {
			// Hit a key past the prefix range, or ran out of leaves.
			break
		}
		leaf, err = t.pager.get(leaf.next)
		if err != nil {
			return err
		}
		i = 0
	}
	if !deleted {
		return nil
	}
	return t.pager.commit()
}

// ApplyBatch implements Batcher: every queued Append and Delete lands
// in ONE pager transaction — one WAL append, one commit record, one
// fsync at FsyncAlways — instead of one per Store op. This is the group
// commit behind the publish-throughput win: the per-op cost collapses
// from a synchronous disk flush to a B+-tree insertion.
//
// Atomicity: the WAL's commit record fences the whole batch, so a crash
// mid-batch recovers to all of it or none of it (the torn-batch
// crash-injection test pins this). Every key is validated before any
// page is touched, so a malformed op rejects the batch without leaving
// it half-applied in memory.
func (t *BTree) ApplyBatch(b *Batch) error {
	if b == nil || len(b.ops) == 0 {
		return nil
	}
	type encOp struct {
		del  bool
		keys [][]byte
	}
	enc := make([]encOp, 0, len(b.ops))
	for _, op := range b.ops {
		e := encOp{del: op.del}
		if op.del {
			k, err := encodeKey(op.term, op.p)
			if err != nil {
				return err
			}
			e.keys = [][]byte{k}
		} else {
			add := op.ps.Clone()
			add.Sort()
			e.keys = make([][]byte, 0, len(add))
			for _, p := range add {
				k, err := encodeKey(op.term, p)
				if err != nil {
					return err
				}
				e.keys = append(e.keys, k)
			}
		}
		enc = append(enc, e)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	for _, e := range enc {
		for _, k := range e.keys {
			if e.del {
				if _, err := t.deleteKey(k); err != nil {
					return err
				}
			} else if err := t.insert(k); err != nil {
				return err
			}
		}
	}
	return t.pager.commit()
}

// Terms implements Store.
func (t *BTree) Terms() ([]string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	var out []string
	leaf, i, err := t.seek([]byte{1})
	if err != nil {
		return nil, err
	}
	last := ""
	for {
		for ; i < len(leaf.keys); i++ {
			term, _, err := decodeKey(leaf.keys[i])
			if err != nil {
				return nil, err
			}
			if term != last {
				out = append(out, term)
				last = term
			}
		}
		if leaf.next == 0 {
			return out, nil
		}
		leaf, err = t.pager.get(leaf.next)
		if err != nil {
			return nil, err
		}
		i = 0
	}
}

// Close implements Store: it commits and checkpoints pending state,
// then releases the files. A second Close (and any operation after the
// first) returns ErrClosed. Close marks the tree closed even when the
// final flush fails, so a failed close cannot leave the store issuing
// raw OS errors from a dead file descriptor.
func (t *BTree) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	t.closed = true
	return t.pager.close()
}

// Checkpoint forces dirty pages into the page file and truncates the
// WAL, regardless of the CheckpointBytes threshold.
func (t *BTree) Checkpoint() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	return t.pager.checkpoint()
}

// Stats reports page usage for diagnostics and benchmarks.
func (t *BTree) Stats() (pages int, height int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return 0, 0
	}
	pages = t.pager.pageCount()
	h := 1
	cur, err := t.pager.get(t.root)
	for err == nil && cur.typ == pageBranch {
		h++
		cur, err = t.pager.get(cur.children[0])
	}
	return pages, h
}
