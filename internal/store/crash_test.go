package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"kadop/internal/postings"
	"kadop/internal/sid"
)

// ---- fault-injecting file layer ------------------------------------
//
// crashState is a write budget shared by every file of one store (page
// file and WAL). Once the budget runs out, the write in flight is
// clipped at the crash byte — modelling a torn write — and every later
// write, sync and truncate fails, modelling the process being dead.
// Reads keep working so the harness itself stays debuggable.

var errCrashed = errors.New("injected crash")

type crashState struct {
	budget int64
	dead   bool
}

type crashFile struct {
	f  file
	st *crashState
}

func (c *crashFile) ReadAt(p []byte, off int64) (int, error) { return c.f.ReadAt(p, off) }

func (c *crashFile) WriteAt(p []byte, off int64) (int, error) {
	if c.st.dead {
		return 0, errCrashed
	}
	if int64(len(p)) <= c.st.budget {
		c.st.budget -= int64(len(p))
		return c.f.WriteAt(p, off)
	}
	n := int(c.st.budget)
	c.st.dead = true
	c.st.budget = 0
	if n > 0 {
		c.f.WriteAt(p[:n], off)
	}
	return n, errCrashed
}

func (c *crashFile) Truncate(size int64) error {
	if c.st.dead {
		return errCrashed
	}
	return c.f.Truncate(size)
}

func (c *crashFile) Sync() error {
	if c.st.dead {
		return errCrashed
	}
	return c.f.Sync()
}

func (c *crashFile) Close() error { return c.f.Close() }

func (c *crashFile) Size() (int64, error) { return c.f.Size() }

// crashOpener wraps the OS opener with a shared crash budget.
func crashOpener(st *crashState) fileOpener {
	return func(path string) (file, error) {
		f, err := openOSFile(path)
		if err != nil {
			return nil, err
		}
		return &crashFile{f: f, st: st}, nil
	}
}

// countingOpener measures the total bytes a run writes, so crash points
// can be sampled across the whole write history. It also counts fsyncs:
// the batch tests assert that a whole batch costs one.
type countingState struct {
	written int64
	syncs   int64
}

func countingOpener(st *countingState) fileOpener {
	return func(path string) (file, error) {
		f, err := openOSFile(path)
		if err != nil {
			return nil, err
		}
		return &countingFile{f: f, st: st}, nil
	}
}

type countingFile struct {
	f  file
	st *countingState
}

func (c *countingFile) ReadAt(p []byte, off int64) (int, error) { return c.f.ReadAt(p, off) }
func (c *countingFile) WriteAt(p []byte, off int64) (int, error) {
	c.st.written += int64(len(p))
	return c.f.WriteAt(p, off)
}
func (c *countingFile) Truncate(size int64) error { return c.f.Truncate(size) }
func (c *countingFile) Sync() error {
	c.st.syncs++
	return c.f.Sync()
}
func (c *countingFile) Close() error              { return c.f.Close() }
func (c *countingFile) Size() (int64, error)      { return c.f.Size() }

// ---- structural invariants -----------------------------------------

// checkInvariants walks the whole tree and fails the test on any
// structural violation: unsorted keys, bad branch fan-out, uneven leaf
// depth, a broken or out-of-order leaf chain, or unparseable keys.
// Page checksums are verified implicitly: every cold read goes through
// deserialize.
func checkInvariants(t *testing.T, bt *BTree) {
	t.Helper()
	pg := bt.pager
	var leafDepth = -1
	var leftmost *page
	var walk func(id uint32, depth int)
	walk = func(id uint32, depth int) {
		p, err := pg.get(id)
		if err != nil {
			t.Fatalf("invariants: read page %d: %v", id, err)
		}
		for i := 1; i < len(p.keys); i++ {
			if compareBytes(p.keys[i-1], p.keys[i]) >= 0 {
				t.Fatalf("invariants: page %d keys out of order at %d", id, i)
			}
		}
		switch p.typ {
		case pageBranch:
			if len(p.children) != len(p.keys)+1 {
				t.Fatalf("invariants: branch %d has %d keys but %d children", id, len(p.keys), len(p.children))
			}
			for _, c := range p.children {
				walk(c, depth+1)
			}
		case pageLeaf:
			if leafDepth == -1 {
				leafDepth = depth
				leftmost = p
			} else if depth != leafDepth {
				t.Fatalf("invariants: leaf %d at depth %d, expected %d", id, depth, leafDepth)
			}
			for _, k := range p.keys {
				if _, _, err := decodeKey(k); err != nil {
					t.Fatalf("invariants: leaf %d: %v", id, err)
				}
			}
		default:
			t.Fatalf("invariants: page %d has type %d", id, p.typ)
		}
	}
	walk(bt.root, 0)
	// The leaf chain delivers every key in strictly increasing order.
	var prev []byte
	for p := leftmost; p != nil; {
		for _, k := range p.keys {
			if prev != nil && compareBytes(prev, k) >= 0 {
				t.Fatalf("invariants: leaf chain regresses at page %d", p.id)
			}
			prev = k
		}
		if p.next == 0 {
			break
		}
		np, err := pg.get(p.next)
		if err != nil {
			t.Fatalf("invariants: leaf chain: %v", err)
		}
		p = np
	}
}

// ---- deterministic op scripts --------------------------------------

type scriptOp struct {
	kind  int // 0 = append, 1 = delete, 2 = delete term
	term  string
	batch postings.List
	del   sid.Posting
}

// makeScript builds a deterministic operation sequence from a seed.
func makeScript(seed int64, n int) []scriptOp {
	rng := rand.New(rand.NewSource(seed))
	terms := []string{"l:a", "l:b", "w:x", "w:y"}
	var inserted []sid.Posting
	randomPosting := func() sid.Posting {
		s := uint32(rng.Intn(5000)*2 + 1)
		return sid.Posting{
			Peer: sid.PeerID(rng.Intn(3)), Doc: sid.DocID(rng.Intn(50)),
			SID: sid.SID{Start: s, End: s + 1 + uint32(rng.Intn(20)), Level: uint16(rng.Intn(5))},
		}
	}
	ops := make([]scriptOp, 0, n)
	for i := 0; i < n; i++ {
		term := terms[rng.Intn(len(terms))]
		switch r := rng.Intn(10); {
		case r < 7 || len(inserted) == 0:
			batch := make(postings.List, rng.Intn(30)+1)
			for j := range batch {
				batch[j] = randomPosting()
			}
			batch.Sort()
			batch = batch.Dedup()
			inserted = append(inserted, batch...)
			ops = append(ops, scriptOp{kind: 0, term: term, batch: batch})
		case r < 9:
			ops = append(ops, scriptOp{kind: 1, term: term, del: inserted[rng.Intn(len(inserted))]})
		default:
			ops = append(ops, scriptOp{kind: 2, term: term})
		}
	}
	return ops
}

// apply runs one scripted op against any Store.
func (op scriptOp) apply(s Store) error {
	switch op.kind {
	case 0:
		return s.Append(op.term, op.batch)
	case 1:
		return s.Delete(op.term, op.del)
	default:
		return s.DeleteTerm(op.term)
	}
}

// ---- the crash-recovery property -----------------------------------

// crashTrials is the per-test budget of injected crash points. The
// crash-smoke make target raises it through KADOP_CRASH_TRIALS for a
// deeper seeded sweep in CI.
func crashTrials(t *testing.T, def int) int {
	if s := os.Getenv("KADOP_CRASH_TRIALS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad KADOP_CRASH_TRIALS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return def / 4
	}
	return def
}

// TestCrashRecoveryProperty is the central durability property: for an
// arbitrary write-kill point anywhere in the byte stream — mid page
// image, mid commit record, inside a checkpoint's page flush, meta
// write or WAL truncation — reopening the tree recovers a state that
// (a) passes every structural invariant and page checksum, and
// (b) equals the committed operation prefix exactly, modulo the single
// operation in flight at the crash, which must be all-or-nothing.
//
// Occasionally the recovery run itself is crashed and recovered again,
// checking that replay is idempotent.
func TestCrashRecoveryProperty(t *testing.T) {
	trials := crashTrials(t, 48)
	const scriptLen = 60
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			seed := int64(1000 + trial/6) // several crash points per script
			script := makeScript(seed, scriptLen)
			opts := Options{CheckpointBytes: 64 << 10} // checkpoint often: crash points hit the fence
			if trial%3 == 0 {
				opts.CheckpointBytes = 1 // checkpoint on every commit
			}

			// Dry run: how many bytes does this script write in total?
			dir := t.TempDir()
			var count countingState
			dryOpts := opts
			dryOpts.open = countingOpener(&count)
			dry, err := openForTest(filepath.Join(dir, "dry.bt"), dryOpts)
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range script {
				if err := op.apply(dry); err != nil {
					t.Fatalf("dry run: %v", err)
				}
			}
			if err := dry.Close(); err != nil {
				t.Fatal(err)
			}
			if count.written == 0 {
				t.Fatal("dry run wrote nothing")
			}

			// Crashed run: kill the writes at a pseudo-random byte.
			rng := rand.New(rand.NewSource(int64(7919*trial + 13)))
			crashAt := rng.Int63n(count.written) + 1
			st := &crashState{budget: crashAt}
			crashOpts := opts
			crashOpts.open = crashOpener(st)
			path := filepath.Join(dir, "crash.bt")
			bt, err := openForTest(path, crashOpts)
			committed := NewMem()
			inflight := -1
			if err != nil {
				// Crashed during the very first open: nothing committed.
				bt = nil
			}
			if bt != nil {
				for i, op := range script {
					if err := op.apply(bt); err != nil {
						inflight = i
						break
					}
					if err := op.apply(committed); err != nil {
						t.Fatalf("oracle: %v", err)
					}
				}
				// Abandon bt without Close: the process just died.
			}

			// Recover — sometimes through a second crash first.
			if trial%5 == 4 {
				st2 := &crashState{budget: rng.Int63n(crashAt) + 1}
				reOpts := opts
				reOpts.open = crashOpener(st2)
				if re, err := openForTest(path, reOpts); err == nil {
					// Recovery survived the second injection; keep going
					// with this handle abandoned, final open is below.
					_ = re
				}
			}
			rec, err := openForTest(path, opts)
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer rec.Close()
			checkInvariants(t, rec)

			// Contents must equal the committed prefix, allowing the
			// in-flight op to have committed atomically right before the
			// crash (its WAL append can land before the error surfaces).
			withInflight := NewMem()
			end := 0
			if bt != nil {
				end = len(script)
				if inflight >= 0 {
					end = inflight + 1
				}
			}
			for _, op := range script[:end] {
				if err := op.apply(withInflight); err != nil {
					t.Fatalf("oracle: %v", err)
				}
			}
			for _, term := range []string{"l:a", "l:b", "w:x", "w:y"} {
				got, err := rec.Get(term)
				if err != nil {
					t.Fatalf("recovered get %q: %v", term, err)
				}
				want, _ := committed.Get(term)
				wantIn, _ := withInflight.Get(term)
				if !reflect.DeepEqual(got, want) && !reflect.DeepEqual(got, wantIn) {
					t.Fatalf("crash@%d: term %q: recovered %d postings, committed %d, committed+inflight %d",
						crashAt, term, len(got), len(want), len(wantIn))
				}
			}
		})
	}
}

// openForTest opens a BTree with explicit options, including the test
// opener hook.
func openForTest(path string, opts Options) (*BTree, error) {
	return OpenBTreeOptions(path, opts)
}

// TestCrashSweepMetaFence sweeps densely spaced crash points through a
// small run with a checkpoint at every commit, so the kill lands inside
// the page flush, the meta write and the WAL truncation of checkpoints
// over and over. Pins the meta-page ordering bug: before the WAL, the
// meta page was rewritten in the same unordered pass as the data pages,
// so a crash could publish a root pointing at unwritten pages.
func TestCrashSweepMetaFence(t *testing.T) {
	script := makeScript(42, 25)
	opts := Options{CheckpointBytes: 1}

	dir := t.TempDir()
	var count countingState
	dryOpts := opts
	dryOpts.open = countingOpener(&count)
	dry, err := openForTest(filepath.Join(dir, "dry.bt"), dryOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range script {
		if err := op.apply(dry); err != nil {
			t.Fatal(err)
		}
	}
	if err := dry.Close(); err != nil {
		t.Fatal(err)
	}

	step := count.written / int64(crashTrials(t, 64))
	if step < 1 {
		step = 1
	}
	for crashAt := step; crashAt <= count.written; crashAt += step {
		st := &crashState{budget: crashAt}
		crashOpts := opts
		crashOpts.open = crashOpener(st)
		path := filepath.Join(dir, fmt.Sprintf("sweep%d.bt", crashAt))
		bt, err := openForTest(path, crashOpts)
		committed := NewMem()
		inflight := -1
		if err == nil {
			for i, op := range script {
				if err := op.apply(bt); err != nil {
					inflight = i
					break
				}
				op.apply(committed)
			}
		}
		// The in-flight op is all-or-nothing: recovery must land on the
		// committed state, or on committed plus the whole in-flight op
		// (its transaction reached the WAL before the crash).
		withInflight := NewMem()
		end := 0
		if bt != nil {
			end = len(script)
			if inflight >= 0 {
				end = inflight + 1
			}
		}
		for _, op := range script[:end] {
			op.apply(withInflight)
		}
		rec, err := openForTest(path, opts)
		if err != nil {
			t.Fatalf("crash@%d: recovery open: %v", crashAt, err)
		}
		checkInvariants(t, rec)
		for _, term := range []string{"l:a", "l:b", "w:x", "w:y"} {
			got, _ := rec.Get(term)
			want, _ := committed.Get(term)
			wantIn, _ := withInflight.Get(term)
			if !reflect.DeepEqual(got, want) && !reflect.DeepEqual(got, wantIn) {
				t.Fatalf("crash@%d: term %q: recovered %d postings, committed %d, committed+inflight %d",
					crashAt, term, len(got), len(want), len(wantIn))
			}
		}
		rec.Close()
	}
}
