package store

import (
	"testing"

	"kadop/internal/metrics"
	"kadop/internal/postings"
	"kadop/internal/sid"
)

func TestInstrumentedAccountsTraffic(t *testing.T) {
	load := metrics.NewLoad(8)
	st := Instrument(NewMem(), load)

	ps := postings.List{
		{Peer: 1, Doc: 1, SID: sid.SID{Start: 1, End: 2, Level: 1}},
		{Peer: 1, Doc: 1, SID: sid.SID{Start: 3, End: 4, Level: 1}},
		{Peer: 1, Doc: 1, SID: sid.SID{Start: 5, End: 6, Level: 1}},
	}
	if err := st.Append("l:author", ps); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("l:author")
	if err != nil || len(got) != 3 {
		t.Fatalf("get: %v, %d postings", err, len(got))
	}
	// Scan that stops after the first posting serves one.
	if err := st.Scan("l:author", sid.Posting{}, func(sid.Posting) bool { return false }); err != nil {
		t.Fatal(err)
	}

	ex := load.Export()
	if ex.Appends != 1 || ex.AppendPostings != 3 {
		t.Errorf("appends = %d/%d, want 1/3", ex.Appends, ex.AppendPostings)
	}
	if ex.PostingsServed != 3 {
		t.Errorf("postings served = %d, want 3 (full get, early-stopped scan)", ex.PostingsServed)
	}
	if len(ex.HotTerms) != 1 || ex.HotTerms[0].Term != "l:author" {
		t.Errorf("hot terms = %+v", ex.HotTerms)
	}
}

func TestInstrumentNilLoadPassthrough(t *testing.T) {
	m := NewMem()
	if st := Instrument(m, nil); st != Store(m) {
		t.Fatal("nil load must return the store unchanged")
	}
}
