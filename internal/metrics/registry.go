package metrics

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a small labeled counter/gauge registry for metrics that
// need a dimension the Collector's fixed classes cannot express — RPC
// traffic per remote peer, for example. Series values are int64 and
// recording is one atomic add, so series handles can sit on RPC hot
// paths once resolved. The zero value is unusable; use NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// Kind distinguishes counters (monotonic) from gauges (set-anytime) in
// the exposition output.
type Kind string

// Series kinds.
const (
	KindCounter Kind = "counter"
	KindGauge   Kind = "gauge"
)

// Label is one name="value" pair on a series.
type Label struct {
	Key   string
	Value string
}

type family struct {
	name   string
	help   string
	kind   Kind
	mu     sync.RWMutex
	series map[string]*Series
}

// Series is one labeled time series. Add and Set are safe for
// concurrent use.
type Series struct {
	labels []Label
	val    atomic.Int64
}

// Add increments the series (counters).
func (s *Series) Add(n int64) {
	if s == nil {
		return
	}
	s.val.Add(n)
}

// Set overwrites the series value (gauges).
func (s *Series) Set(n int64) {
	if s == nil {
		return
	}
	s.val.Store(n)
}

// Value returns the current value.
func (s *Series) Value() int64 {
	if s == nil {
		return 0
	}
	return s.val.Load()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter returns (creating on first use) the counter series of the
// named family with exactly these labels. The help string is recorded
// on first use of the family; the kind of an existing family wins.
func (r *Registry) Counter(name, help string, labels ...Label) *Series {
	return r.series(name, help, KindCounter, labels)
}

// Gauge returns (creating on first use) the gauge series of the named
// family with exactly these labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Series {
	return r.series(name, help, KindGauge, labels)
}

func (r *Registry) series(name, help string, kind Kind, labels []Label) *Series {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{name: name, help: help, kind: kind, series: map[string]*Series{}}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	// Canonical label order makes {a=1,b=2} and {b=2,a=1} one series.
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	key := labelKey(ls)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s == nil {
		f.mu.Lock()
		if s = f.series[key]; s == nil {
			s = &Series{labels: ls}
			f.series[key] = s
		}
		f.mu.Unlock()
	}
	return s
}

func labelKey(ls []Label) string {
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte(',')
	}
	return b.String()
}

// SeriesValue is one labeled value in a RegistryExport.
type SeriesValue struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// FamilyExport is one metric family in a RegistryExport.
type FamilyExport struct {
	Help   string        `json:"help,omitempty"`
	Kind   string        `json:"kind"`
	Series []SeriesValue `json:"series"`
}

// Export returns a point-in-time copy of every family, families sorted
// by name and series by label key.
func (r *Registry) Export() map[string]FamilyExport {
	out := map[string]FamilyExport{}
	if r == nil {
		return out
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	for _, f := range fams {
		fe := FamilyExport{Help: f.help, Kind: string(f.kind)}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			sv := SeriesValue{Value: s.Value()}
			if len(s.labels) > 0 {
				sv.Labels = map[string]string{}
				for _, l := range s.labels {
					sv.Labels[l.Key] = l.Value
				}
			}
			fe.Series = append(fe.Series, sv)
		}
		f.mu.RUnlock()
		out[f.name] = fe
	}
	return out
}
