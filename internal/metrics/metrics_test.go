package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCollectorCounts(t *testing.T) {
	c := NewCollector()
	c.Count(Postings, 100)
	c.Count(Postings, 50)
	c.Count(Filters, 10)
	if c.Bytes(Postings) != 150 || c.Messages(Postings) != 2 {
		t.Errorf("postings: %d bytes, %d msgs", c.Bytes(Postings), c.Messages(Postings))
	}
	if c.TotalBytes() != 160 {
		t.Errorf("total = %d", c.TotalBytes())
	}
	snap := c.Snapshot()
	if !strings.Contains(snap, "postings") || !strings.Contains(snap, "filters") {
		t.Errorf("snapshot missing classes:\n%s", snap)
	}
	c.Reset()
	if c.TotalBytes() != 0 {
		t.Error("reset did not zero")
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Count(Index, 1)
			}
		}()
	}
	wg.Wait()
	if c.Bytes(Index) != 8000 {
		t.Errorf("concurrent count = %d", c.Bytes(Index))
	}
}

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	c.Count(Index, 1) // must not panic
	if c.Bytes(Index) != 0 || c.TotalBytes() != 0 || c.Messages(Index) != 0 {
		t.Error("nil collector should report zeros")
	}
	c.Reset()
	if c.Snapshot() != "" {
		t.Error("nil snapshot should be empty")
	}
}

func TestTimer(t *testing.T) {
	tm := StartTimer()
	if tm.Elapsed() < 0 {
		t.Error("negative elapsed")
	}
}
