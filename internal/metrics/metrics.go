// Package metrics provides the traffic and latency accounting used by
// the experiments: every DHT message is charged to a class, and
// experiment harnesses read totals to reproduce the paper's bandwidth
// and response-time measurements.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Class labels a kind of traffic for attribution in the reports.
type Class string

// Traffic classes used by the system.
const (
	Routing  Class = "routing"  // find-node and ping traffic
	Index    Class = "index"    // posting appends during publishing
	Postings Class = "postings" // posting list transfers during queries
	Filters  Class = "filters"  // structural Bloom filter transfers (unspecified kind)
	// FiltersAB and FiltersDB split filter traffic by kind, matching the
	// breakdown of the paper's Figure 7.
	FiltersAB Class = "filters-ab"
	FiltersDB Class = "filters-db"
	Control   Class = "control" // query control, conditions, completions
	// Repair is replica-maintenance traffic: digests exchanged between
	// key owners and the re-pushed copies that heal under-replicated
	// keys after churn. Reported separately so experiments can price
	// robustness the same way they price query bandwidth.
	Repair Class = "repair"
	Other  Class = "other"
)

// Event labels a robustness occurrence counted without a byte cost:
// the failure-handling machinery reports how often it had to act.
type Event string

// Events counted by the failure-handling machinery.
const (
	// EventRetry counts RPC attempts beyond the first.
	EventRetry Event = "retries"
	// EventTimeout counts RPCs abandoned on a context deadline.
	EventTimeout Event = "timeouts"
	// EventEviction counts contacts dropped from routing tables after
	// failed calls.
	EventEviction Event = "evictions"
	// EventRepair counts keys re-pushed by the replica repair loop.
	EventRepair Event = "repairs"
	// EventResync counts keys pulled and merged by the resync/join
	// direction of replica repair (a peer catching up on appends it
	// missed, or a joiner fetching keys it is now responsible for).
	EventResync Event = "resync-pulls"
	// EventHandoff counts keys a gracefully departing peer handed off
	// to the remaining owner set before leaving.
	EventHandoff Event = "handoff-keys"
	// EventProbe counts liveness probes sent on suspicion (a contact
	// failed an RPC and is pinged before eviction).
	EventProbe Event = "probes"
	// EventFailedProbe counts liveness probes that went unanswered,
	// confirming the suspicion and triggering eviction.
	EventFailedProbe Event = "failed-probes"
	// EventRefresh counts stale routing buckets refreshed with a
	// random-identifier lookup.
	EventRefresh Event = "bucket-refreshes"
	// EventShed counts reads the admission gate rejected with
	// ErrOverload so the client would fail over to another replica.
	EventShed Event = "shed-reads"
	// EventCacheHit counts posting blocks served from the query-peer
	// block cache instead of the network.
	EventCacheHit Event = "cache-hits"
	// EventCacheMiss counts posting blocks the cache had to fetch.
	EventCacheMiss Event = "cache-misses"
	// EventCacheCoalesced counts fetches that joined an in-flight
	// request for the same block instead of issuing their own RPC.
	EventCacheCoalesced Event = "cache-coalesced"
	// EventCacheEviction counts cached blocks evicted to stay within
	// the cache's byte budget.
	EventCacheEviction Event = "cache-evictions"
	// EventCacheBytesSaved accumulates the encoded bytes of posting
	// blocks served from cache — wire transfer that did not happen.
	EventCacheBytesSaved Event = "cache-bytes-saved"
)

// Collector accumulates message and byte counts per class. The zero
// value is unusable; use NewCollector. All methods are safe for
// concurrent use.
type Collector struct {
	mu       sync.Mutex
	messages map[Class]int64
	bytes    map[Class]int64
	events   map[Event]int64

	// histMu guards only the map; the histograms themselves record
	// through atomics, so Observe takes a read lock on the common path
	// and the write lock only the first time an operation appears.
	histMu sync.RWMutex
	hists  map[string]*Histogram
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		messages: map[Class]int64{},
		bytes:    map[Class]int64{},
		events:   map[Event]int64{},
		hists:    map[string]*Histogram{},
	}
}

// Observe records one latency observation for the named operation.
func (c *Collector) Observe(op string, d time.Duration) {
	if c == nil {
		return
	}
	c.hist(op).Record(d)
}

// ObserveExemplar records one latency observation for the named
// operation together with the trace id that explains it; the owning
// bucket keeps the observation as its exposition exemplar. A zero
// traceID degrades to a plain Observe.
func (c *Collector) ObserveExemplar(op string, d time.Duration, traceID uint64) {
	if c == nil {
		return
	}
	if traceID == 0 {
		c.Observe(op, d)
		return
	}
	c.hist(op).RecordExemplar(d, traceID)
}

// hist returns (creating on first use) the histogram for op.
func (c *Collector) hist(op string) *Histogram {
	c.histMu.RLock()
	h := c.hists[op]
	c.histMu.RUnlock()
	if h == nil {
		c.histMu.Lock()
		if c.hists == nil {
			c.hists = map[string]*Histogram{}
		}
		if h = c.hists[op]; h == nil {
			h = &Histogram{}
			c.hists[op] = h
		}
		c.histMu.Unlock()
	}
	return h
}

// Hist returns the histogram for an operation, or nil if nothing has
// been observed under that name.
func (c *Collector) Hist(op string) *Histogram {
	if c == nil {
		return nil
	}
	c.histMu.RLock()
	defer c.histMu.RUnlock()
	return c.hists[op]
}

// Quantile returns the q-th latency quantile of an operation (0 when
// the operation has no observations).
func (c *Collector) Quantile(op string, q float64) time.Duration {
	return c.Hist(op).Quantile(q)
}

// Ops returns the sorted names of all operations with observations.
func (c *Collector) Ops() []string {
	if c == nil {
		return nil
	}
	c.histMu.RLock()
	ops := make([]string, 0, len(c.hists))
	for op := range c.hists {
		ops = append(ops, op)
	}
	c.histMu.RUnlock()
	sort.Strings(ops)
	return ops
}

// ClassBytes returns a copy of the per-class byte counters, for
// before/after deltas around a traced operation.
func (c *Collector) ClassBytes() map[Class]int64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m := make(map[Class]int64, len(c.bytes))
	for cl, n := range c.bytes {
		m[cl] = n
	}
	return m
}

// ClassStat is one traffic class in an Export.
type ClassStat struct {
	Messages int64 `json:"messages"`
	Bytes    int64 `json:"bytes"`
}

// OpStat is one latency histogram in an Export.
type OpStat struct {
	Count   int64         `json:"count"`
	Mean    time.Duration `json:"mean_ns"`
	P50     time.Duration `json:"p50_ns"`
	P95     time.Duration `json:"p95_ns"`
	P99     time.Duration `json:"p99_ns"`
	MeanStr string        `json:"mean"`
	P50Str  string        `json:"p50"`
	P95Str  string        `json:"p95"`
	P99Str  string        `json:"p99"`
}

// Export captures the whole collector for JSON serialisation (the
// admin endpoint's /debug/metrics).
type Export struct {
	Classes map[string]ClassStat `json:"classes"`
	Events  map[string]int64     `json:"events"`
	Ops     map[string]OpStat    `json:"ops"`
}

// Export returns a point-in-time copy of every counter and histogram.
func (c *Collector) Export() Export {
	ex := Export{
		Classes: map[string]ClassStat{},
		Events:  map[string]int64{},
		Ops:     map[string]OpStat{},
	}
	if c == nil {
		return ex
	}
	c.mu.Lock()
	for cl, b := range c.bytes {
		ex.Classes[string(cl)] = ClassStat{Messages: c.messages[cl], Bytes: b}
	}
	for e, n := range c.events {
		ex.Events[string(e)] = n
	}
	c.mu.Unlock()
	c.histMu.RLock()
	for op, h := range c.hists {
		st := OpStat{
			Count: h.Count(),
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		}
		st.MeanStr = st.Mean.String()
		st.P50Str = st.P50.String()
		st.P95Str = st.P95.String()
		st.P99Str = st.P99.String()
		ex.Ops[op] = st
	}
	c.histMu.RUnlock()
	return ex
}

// CountEvent records one robustness event.
func (c *Collector) CountEvent(e Event) {
	c.AddEvent(e, 1)
}

// AddEvent adds n to an event counter; byte-valued events (such as
// cache-bytes-saved) accumulate through it.
func (c *Collector) AddEvent(e Event, n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.events == nil {
		c.events = map[Event]int64{}
	}
	c.events[e] += n
	c.mu.Unlock()
}

// Events returns the count for one event kind.
func (c *Collector) Events(e Event) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events[e]
}

// Count charges one message of n bytes to the class.
func (c *Collector) Count(class Class, n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.messages[class]++
	c.bytes[class] += int64(n)
	c.mu.Unlock()
}

// Bytes returns the byte total for one class.
func (c *Collector) Bytes(class Class) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes[class]
}

// Messages returns the message total for one class.
func (c *Collector) Messages(class Class) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.messages[class]
}

// TotalBytes returns the byte total across all classes.
func (c *Collector) TotalBytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, v := range c.bytes {
		n += v
	}
	return n
}

// Reset zeroes all counters and histograms.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.messages = map[Class]int64{}
	c.bytes = map[Class]int64{}
	c.events = map[Event]int64{}
	c.mu.Unlock()
	c.histMu.Lock()
	c.hists = map[string]*Histogram{}
	c.histMu.Unlock()
}

// Snapshot returns a stable, sorted rendering of the counters:
// per-class traffic, robustness events, and latency percentiles for
// every observed operation.
func (c *Collector) Snapshot() string {
	if c == nil {
		return ""
	}
	var b strings.Builder
	c.mu.Lock()
	classes := make([]string, 0, len(c.bytes))
	for cl := range c.bytes {
		classes = append(classes, string(cl))
	}
	sort.Strings(classes)
	for _, cl := range classes {
		fmt.Fprintf(&b, "%-10s %8d msgs %12d bytes\n", cl, c.messages[Class(cl)], c.bytes[Class(cl)])
	}
	events := make([]string, 0, len(c.events))
	for e := range c.events {
		events = append(events, string(e))
	}
	sort.Strings(events)
	for _, e := range events {
		fmt.Fprintf(&b, "%-10s %8d events\n", e, c.events[Event(e)])
	}
	c.mu.Unlock()
	for _, op := range c.Ops() {
		h := c.Hist(op)
		fmt.Fprintf(&b, "%-18s %8d obs  p50 %-10v p95 %-10v p99 %-10v\n",
			op, h.Count(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	}
	return b.String()
}

// Timer measures wall-clock durations of experiment phases.
type Timer struct {
	start time.Time
}

// StartTimer begins timing.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns the time since the timer started.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }
