// Package metrics provides the traffic and latency accounting used by
// the experiments: every DHT message is charged to a class, and
// experiment harnesses read totals to reproduce the paper's bandwidth
// and response-time measurements.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Class labels a kind of traffic for attribution in the reports.
type Class string

// Traffic classes used by the system.
const (
	Routing  Class = "routing"  // find-node and ping traffic
	Index    Class = "index"    // posting appends during publishing
	Postings Class = "postings" // posting list transfers during queries
	Filters  Class = "filters"  // structural Bloom filter transfers (unspecified kind)
	// FiltersAB and FiltersDB split filter traffic by kind, matching the
	// breakdown of the paper's Figure 7.
	FiltersAB Class = "filters-ab"
	FiltersDB Class = "filters-db"
	Control   Class = "control" // query control, conditions, completions
	// Repair is replica-maintenance traffic: digests exchanged between
	// key owners and the re-pushed copies that heal under-replicated
	// keys after churn. Reported separately so experiments can price
	// robustness the same way they price query bandwidth.
	Repair Class = "repair"
	Other  Class = "other"
)

// Event labels a robustness occurrence counted without a byte cost:
// the failure-handling machinery reports how often it had to act.
type Event string

// Events counted by the failure-handling machinery.
const (
	// EventRetry counts RPC attempts beyond the first.
	EventRetry Event = "retries"
	// EventTimeout counts RPCs abandoned on a context deadline.
	EventTimeout Event = "timeouts"
	// EventEviction counts contacts dropped from routing tables after
	// failed calls.
	EventEviction Event = "evictions"
	// EventRepair counts keys re-pushed by the replica repair loop.
	EventRepair Event = "repairs"
)

// Collector accumulates message and byte counts per class. The zero
// value is unusable; use NewCollector. All methods are safe for
// concurrent use.
type Collector struct {
	mu       sync.Mutex
	messages map[Class]int64
	bytes    map[Class]int64
	events   map[Event]int64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{messages: map[Class]int64{}, bytes: map[Class]int64{}, events: map[Event]int64{}}
}

// CountEvent records one robustness event.
func (c *Collector) CountEvent(e Event) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.events == nil {
		c.events = map[Event]int64{}
	}
	c.events[e]++
	c.mu.Unlock()
}

// Events returns the count for one event kind.
func (c *Collector) Events(e Event) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events[e]
}

// Count charges one message of n bytes to the class.
func (c *Collector) Count(class Class, n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.messages[class]++
	c.bytes[class] += int64(n)
	c.mu.Unlock()
}

// Bytes returns the byte total for one class.
func (c *Collector) Bytes(class Class) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes[class]
}

// Messages returns the message total for one class.
func (c *Collector) Messages(class Class) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.messages[class]
}

// TotalBytes returns the byte total across all classes.
func (c *Collector) TotalBytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, v := range c.bytes {
		n += v
	}
	return n
}

// Reset zeroes all counters.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.messages = map[Class]int64{}
	c.bytes = map[Class]int64{}
	c.events = map[Event]int64{}
	c.mu.Unlock()
}

// Snapshot returns a stable, sorted rendering of the counters.
func (c *Collector) Snapshot() string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	classes := make([]string, 0, len(c.bytes))
	for cl := range c.bytes {
		classes = append(classes, string(cl))
	}
	sort.Strings(classes)
	s := ""
	for _, cl := range classes {
		s += fmt.Sprintf("%-10s %8d msgs %12d bytes\n", cl, c.messages[Class(cl)], c.bytes[Class(cl)])
	}
	events := make([]string, 0, len(c.events))
	for e := range c.events {
		events = append(events, string(e))
	}
	sort.Strings(events)
	for _, e := range events {
		s += fmt.Sprintf("%-10s %8d events\n", e, c.events[Event(e)])
	}
	return s
}

// Timer measures wall-clock durations of experiment phases.
type Timer struct {
	start time.Time
}

// StartTimer begins timing.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns the time since the timer started.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }
