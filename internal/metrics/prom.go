// Prometheus text exposition (version 0.0.4) for the collector, the
// per-peer load accounting, and the labeled registry. Written by hand —
// the format is a dozen lines of rules and the repo takes no
// dependencies — and kept deterministic (families and series sorted) so
// the output can be golden-file tested and diffed between scrapes.
package metrics

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"
)

// PromOptions name the sources rendered by WriteProm. Every field is
// optional; nil sources render nothing.
type PromOptions struct {
	Collector *Collector
	Load      *Load
	Registry  *Registry
	// HotTerms bounds the kadop_hot_term_bytes series emitted per scrape
	// (0 = the sketch's full contents).
	HotTerms int
	// BuildInfo adds kadop_build_info and the process start-time gauge;
	// off by default so deterministic (golden-file) expositions stay
	// reproducible.
	BuildInfo bool
}

// WriteProm renders the metrics in Prometheus text exposition format.
func WriteProm(w io.Writer, o PromOptions) error {
	bw := &errWriter{w: w}
	writePromCollector(bw, o.Collector)
	writePromLoad(bw, o.Load, o.HotTerms)
	writePromRegistry(bw, o.Registry)
	if o.BuildInfo {
		writePromBuildInfo(bw)
	}
	return bw.err
}

// processStart anchors the start-time gauge; captured at package init,
// which for this process is as close to exec as Go offers without cgo.
var processStart = time.Now()

// buildVersion returns the module version baked into the binary, or
// "devel" for unversioned builds.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

func writePromBuildInfo(w *errWriter) {
	w.printf("# HELP kadop_build_info Build metadata; the gauge is always 1.\n")
	w.printf("# TYPE kadop_build_info gauge\n")
	w.printf("kadop_build_info{go=\"%s\",version=\"%s\"} 1\n",
		escapeLabelValue(runtime.Version()), escapeLabelValue(buildVersion()))
	w.printf("# HELP kadop_process_start_time_seconds Unix time the process started.\n")
	w.printf("# TYPE kadop_process_start_time_seconds gauge\n")
	w.printf("kadop_process_start_time_seconds %s\n", formatFloat(float64(processStart.UnixNano())/1e9))
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

func writePromCollector(w *errWriter, c *Collector) {
	if c == nil {
		return
	}
	ex := c.Export()

	classes := make([]string, 0, len(ex.Classes))
	for cl := range ex.Classes {
		classes = append(classes, cl)
	}
	sort.Strings(classes)
	if len(classes) > 0 {
		w.printf("# HELP kadop_traffic_messages_total DHT messages by traffic class.\n")
		w.printf("# TYPE kadop_traffic_messages_total counter\n")
		for _, cl := range classes {
			w.printf("kadop_traffic_messages_total{class=\"%s\"} %d\n", escapeLabelValue(cl), ex.Classes[cl].Messages)
		}
		w.printf("# HELP kadop_traffic_bytes_total DHT message bytes by traffic class.\n")
		w.printf("# TYPE kadop_traffic_bytes_total counter\n")
		for _, cl := range classes {
			w.printf("kadop_traffic_bytes_total{class=\"%s\"} %d\n", escapeLabelValue(cl), ex.Classes[cl].Bytes)
		}
	}

	events := make([]string, 0, len(ex.Events))
	for e := range ex.Events {
		events = append(events, e)
	}
	sort.Strings(events)
	if len(events) > 0 {
		w.printf("# HELP kadop_events_total Robustness and cache events.\n")
		w.printf("# TYPE kadop_events_total counter\n")
		for _, e := range events {
			w.printf("kadop_events_total{event=\"%s\"} %d\n", escapeLabelValue(e), ex.Events[e])
		}
	}

	ops := c.Ops()
	if len(ops) > 0 {
		w.printf("# HELP kadop_op_latency_seconds Operation latency.\n")
		w.printf("# TYPE kadop_op_latency_seconds histogram\n")
		for _, op := range ops {
			h := c.Hist(op)
			if h == nil {
				continue
			}
			lv := escapeLabelValue(op)
			var cum int64
			for i := 0; i < NumBuckets; i++ {
				cum += h.BucketCount(i)
				// Exemplars ride the bucket line OpenMetrics-style
				// (" # {trace_id=...} value"); classic scrapers that stop at
				// the sample value ignore the suffix, and the in-house
				// cluster parser understands it.
				if e := h.BucketExemplar(i); e != nil {
					w.printf("kadop_op_latency_seconds_bucket{op=\"%s\",le=\"%s\"} %d # {trace_id=\"%016x\"} %s\n",
						lv, formatFloat(BucketBound(i).Seconds()), cum, e.TraceID, formatFloat(e.Value.Seconds()))
					continue
				}
				w.printf("kadop_op_latency_seconds_bucket{op=\"%s\",le=\"%s\"} %d\n",
					lv, formatFloat(BucketBound(i).Seconds()), cum)
			}
			w.printf("kadop_op_latency_seconds_bucket{op=\"%s\",le=\"+Inf\"} %d\n", lv, h.Count())
			w.printf("kadop_op_latency_seconds_sum{op=\"%s\"} %s\n", lv, formatFloat(h.Sum().Seconds()))
			w.printf("kadop_op_latency_seconds_count{op=\"%s\"} %d\n", lv, h.Count())
		}
	}
}

func writePromLoad(w *errWriter, l *Load, hotTerms int) {
	if l == nil {
		return
	}
	ex := l.Export()
	counter := func(name, help string, v int64) {
		w.printf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("kadop_load_bytes_served_total", "Posting bytes served from this peer's store.", ex.BytesServed)
	counter("kadop_load_postings_served_total", "Postings served from this peer's store.", ex.PostingsServed)
	counter("kadop_load_blocks_served_total", "DPP posting blocks served by this peer.", ex.BlocksServed)
	counter("kadop_load_appends_total", "Append operations absorbed by this peer.", ex.Appends)
	counter("kadop_load_append_postings_total", "Postings appended at this peer.", ex.AppendPostings)
	counter("kadop_load_append_bytes_total", "Posting bytes appended at this peer.", ex.AppendBytes)
	w.printf("# HELP kadop_load_recent_bytes Posting bytes served over the last two control-loop windows (the replica-selection gauge).\n# TYPE kadop_load_recent_bytes gauge\nkadop_load_recent_bytes %d\n", ex.RecentBytes)
	hot := ex.HotTerms
	if hotTerms > 0 && len(hot) > hotTerms {
		hot = hot[:hotTerms]
	}
	if len(hot) > 0 {
		w.printf("# HELP kadop_hot_term_bytes Byte weight of this peer's hottest terms (space-saving sketch; overestimates by at most the sketch error).\n")
		w.printf("# TYPE kadop_hot_term_bytes gauge\n")
		// Top() sorts by weight; exposition wants a stable series order.
		sort.Slice(hot, func(i, j int) bool { return hot[i].Term < hot[j].Term })
		for _, ht := range hot {
			w.printf("kadop_hot_term_bytes{term=\"%s\"} %d\n", escapeLabelValue(ht.Term), ht.Bytes)
		}
	}
}

func writePromRegistry(w *errWriter, r *Registry) {
	if r == nil {
		return
	}
	ex := r.Export()
	names := make([]string, 0, len(ex))
	for name := range ex {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := ex[name]
		if f.Help != "" {
			w.printf("# HELP %s %s\n", name, escapeHelp(f.Help))
		}
		w.printf("# TYPE %s %s\n", name, f.Kind)
		for _, s := range f.Series {
			if len(s.Labels) == 0 {
				w.printf("%s %d\n", name, s.Value)
				continue
			}
			keys := make([]string, 0, len(s.Labels))
			for k := range s.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, fmt.Sprintf("%s=\"%s\"", k, escapeLabelValue(s.Labels[k])))
			}
			w.printf("%s{%s} %d\n", name, strings.Join(parts, ","), s.Value)
		}
	}
}

// escapeLabelValue escapes a label value per the exposition format —
// backslash, double quote, and newline — returning a string safe to
// print between plain double quotes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
