package metrics

import (
	"fmt"
	"testing"
)

func TestSpaceSavingExactUnderCapacity(t *testing.T) {
	s := NewSpaceSaving(8)
	s.Add("a", 100)
	s.Add("b", 50)
	s.Add("a", 25)
	top := s.Top(0)
	if len(top) != 2 {
		t.Fatalf("want 2 items, got %d", len(top))
	}
	if top[0].Term != "a" || top[0].Bytes != 125 || top[0].Err != 0 {
		t.Fatalf("bad top item: %+v", top[0])
	}
	if top[1].Term != "b" || top[1].Bytes != 50 {
		t.Fatalf("bad second item: %+v", top[1])
	}
}

func TestSpaceSavingKeepsHeavyHitters(t *testing.T) {
	// 4 heavy terms, then a long tail of singletons. A capacity-8 sketch
	// must retain every term whose weight exceeds total/8.
	s := NewSpaceSaving(8)
	heavy := map[string]int64{"h0": 10000, "h1": 8000, "h2": 6000, "h3": 4000}
	for term, w := range heavy {
		s.Add(term, w)
	}
	for i := 0; i < 200; i++ {
		s.Add(fmt.Sprintf("tail%d", i), 1)
	}
	top := s.Top(4)
	got := map[string]bool{}
	for _, ht := range top {
		got[ht.Term] = true
		if ht.Bytes < heavy[ht.Term] {
			t.Errorf("%s underestimated: %d < %d", ht.Term, ht.Bytes, heavy[ht.Term])
		}
		if ht.Bytes-ht.Err > heavy[ht.Term] {
			t.Errorf("%s over-guaranteed: bytes %d err %d true %d", ht.Term, ht.Bytes, ht.Err, heavy[ht.Term])
		}
	}
	for term := range heavy {
		if !got[term] {
			t.Errorf("heavy hitter %s evicted; top = %v", term, top)
		}
	}
	if n := len(s.Top(0)); n != 8 {
		t.Errorf("sketch exceeded capacity: %d items", n)
	}
}

// TestSpaceSavingDecayEvictReinsert pins the stale-count fix: a key
// evicted and re-inserted within one decay window must inherit the
// *decayed* minimum, not a weight frozen at eviction time. Before the
// fix, Decay scaled Bytes but not Err, so the sketch kept claiming the
// re-inserted key's weight was mostly real traffic when it was almost
// entirely inherited error from before the window rolled.
func TestSpaceSavingDecayEvictReinsert(t *testing.T) {
	s := NewSpaceSaving(2)
	s.Add("a", 100)
	s.Add("b", 60)
	// c evicts b (the minimum): inherits Bytes 60+10, Err 60.
	s.Add("c", 10)
	top := s.Top(0)
	if top[1].Term != "c" || top[1].Bytes != 70 || top[1].Err != 60 {
		t.Fatalf("after evict: %+v", top)
	}
	// One decay window: everything halves, error bounds included.
	s.Decay(0.5)
	top = s.Top(0)
	if top[0].Term != "a" || top[0].Bytes != 50 {
		t.Fatalf("after decay: %+v", top)
	}
	if top[1].Term != "c" || top[1].Bytes != 35 || top[1].Err != 30 {
		t.Fatalf("stale error bound survived decay: %+v", top[1])
	}
	// b comes back within the same window, evicting c. Its count must be
	// built on c's decayed weight (35), not c's pre-decay weight.
	s.Add("b", 10)
	top = s.Top(0)
	if top[1].Term != "b" {
		t.Fatalf("re-insert did not evict the minimum: %+v", top)
	}
	if top[1].Bytes != 45 || top[1].Err != 35 {
		t.Fatalf("re-inserted key reports stale count: got bytes %d err %d, want 45/35", top[1].Bytes, top[1].Err)
	}
	// Guaranteed weight (Bytes-Err) must never exceed b's true traffic.
	if g := top[1].Bytes - top[1].Err; g > 10 {
		t.Fatalf("guaranteed weight %d exceeds true traffic 10", g)
	}
}

func TestSpaceSavingDecayDropsZeroes(t *testing.T) {
	s := NewSpaceSaving(4)
	s.Add("a", 1)
	s.Add("b", 1000)
	s.Decay(0.25)
	top := s.Top(0)
	if len(top) != 1 || top[0].Term != "b" || top[0].Bytes != 250 {
		t.Fatalf("decay should drop zeroed entries: %+v", top)
	}
	var nilSketch *SpaceSaving
	nilSketch.Decay(0.5) // nil-safe
}

func TestLoadRecentWindow(t *testing.T) {
	l := NewLoad(4)
	l.Serve("x", 10)
	if l.RecentBytes() != 10*PostingWireBytes {
		t.Fatalf("recent = %d", l.RecentBytes())
	}
	l.Roll()
	// Still visible for one full window after the roll.
	if l.RecentBytes() != 10*PostingWireBytes {
		t.Fatalf("recent after one roll = %d", l.RecentBytes())
	}
	l.Serve("x", 2)
	if l.RecentBytes() != 12*PostingWireBytes {
		t.Fatalf("recent mid-window = %d", l.RecentBytes())
	}
	l.Roll()
	l.Roll()
	if l.RecentBytes() != 0 {
		t.Fatalf("recent after two idle rolls = %d", l.RecentBytes())
	}
	// Cumulative counters are untouched by rolls.
	if l.BytesServed() != 12*PostingWireBytes {
		t.Fatalf("bytes served = %d", l.BytesServed())
	}
	var nl *Load
	nl.Roll()
	nl.DecayHot(0.5)
	if nl.RecentBytes() != 0 {
		t.Fatal("nil load must read as zero")
	}
}

func TestCanonicalTerm(t *testing.T) {
	cases := map[string]string{
		"l:author":              "l:author",
		"overflow:3:l:author":   "l:author",
		"overflow:12:w:ullman":  "w:ullman",
		"overflow:1:overflow:x": "overflow:x",
		"overflow:notanum:l:a":  "overflow:notanum:l:a",
		"overflow:":             "overflow:",
		"overflow::x":           "overflow::x",
		"doc:xyz":               "doc:xyz",
		"overflow:7:":           "",
	}
	for in, want := range cases {
		if got := CanonicalTerm(in); got != want {
			t.Errorf("CanonicalTerm(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLoadAccounting(t *testing.T) {
	l := NewLoad(4)
	l.Append("l:author", 10)
	l.Serve("overflow:2:l:author", 5)
	l.ServeBlock()
	l.Serve("w:ullman", 1)
	ex := l.Export()
	if ex.BytesServed != 6*PostingWireBytes {
		t.Errorf("bytes served = %d, want %d", ex.BytesServed, 6*PostingWireBytes)
	}
	if ex.PostingsServed != 6 || ex.BlocksServed != 1 {
		t.Errorf("postings/blocks = %d/%d", ex.PostingsServed, ex.BlocksServed)
	}
	if ex.Appends != 1 || ex.AppendPostings != 10 || ex.AppendBytes != 10*PostingWireBytes {
		t.Errorf("appends = %+v", ex)
	}
	if len(ex.HotTerms) != 2 || ex.HotTerms[0].Term != "l:author" {
		t.Fatalf("hot terms = %+v", ex.HotTerms)
	}
	// Overflow serve and append both attribute to the canonical term.
	if ex.HotTerms[0].Bytes != 15*PostingWireBytes {
		t.Errorf("l:author weight = %d, want %d", ex.HotTerms[0].Bytes, 15*PostingWireBytes)
	}
}

func TestLoadNilSafe(t *testing.T) {
	var l *Load
	l.Serve("x", 1)
	l.ServeBlock()
	l.Append("x", 1)
	if l.BytesServed() != 0 || l.BlocksServed() != 0 || l.Appends() != 0 {
		t.Fatal("nil load must read as zero")
	}
	if ex := l.Export(); ex.BytesServed != 0 || ex.HotTerms != nil {
		t.Fatalf("nil export = %+v", ex)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("kadop_rpc_peer_messages_total", "help", Label{"peer", "p1"}, Label{"op", "rpc:get"})
	// Same labels in another order resolve to the same series.
	b := r.Counter("kadop_rpc_peer_messages_total", "help", Label{"op", "rpc:get"}, Label{"peer", "p1"})
	if a != b {
		t.Fatal("label order created a second series")
	}
	a.Add(2)
	b.Add(3)
	if a.Value() != 5 {
		t.Fatalf("value = %d, want 5", a.Value())
	}
	g := r.Gauge("kadop_up", "is up")
	g.Set(1)
	ex := r.Export()
	if len(ex) != 2 {
		t.Fatalf("families = %d, want 2", len(ex))
	}
	f := ex["kadop_rpc_peer_messages_total"]
	if f.Kind != "counter" || len(f.Series) != 1 || f.Series[0].Value != 5 {
		t.Fatalf("family = %+v", f)
	}
	if f.Series[0].Labels["peer"] != "p1" || f.Series[0].Labels["op"] != "rpc:get" {
		t.Fatalf("labels = %+v", f.Series[0].Labels)
	}
	if ex["kadop_up"].Kind != "gauge" || ex["kadop_up"].Series[0].Value != 1 {
		t.Fatalf("gauge = %+v", ex["kadop_up"])
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		"plain":      "plain",
		`back\slash`: `back\\slash`,
		`qu"ote`:     `qu\"ote`,
		"new\nline":  `new\nline`,
		"\\\"\n":     `\\\"\n`,
	}
	for in, want := range cases {
		if got := escapeLabelValue(in); got != want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDeclaredOps(t *testing.T) {
	if !IsDeclaredOp(OpLookup) || !IsDeclaredOp(OpRPCFindNode) {
		t.Fatal("known constants must be declared")
	}
	if IsDeclaredOp("made-up-op") {
		t.Fatal("unknown op must not be declared")
	}
	ops := DeclaredOps()
	if len(ops) != len(declaredOps) {
		t.Fatalf("DeclaredOps returned %d of %d", len(ops), len(declaredOps))
	}
}
