package metrics

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// PostingWireBytes is the nominal encoded size of one posting used for
// load accounting: the uncompressed wire posting (document key + SID)
// costs 18 bytes, and load comparisons only need a consistent unit, not
// the delta-compressed size of each individual transfer.
const PostingWireBytes = 18

// DefaultHotTerms is the sketch capacity a peer tracks hot terms with
// when no explicit capacity is configured.
const DefaultHotTerms = 64

// Load accounts the indexing and serving work one peer performs, per
// term, with a bounded top-K hot-term sketch so skew stays visible
// without an unbounded per-term map. Unlike the Collector — which an
// in-process simulation shares across every peer of the network — a
// Load belongs to exactly one node, which is what makes per-peer skew
// measurable at all. All methods are safe for concurrent use and
// nil-safe.
type Load struct {
	bytesServed    atomic.Int64
	postingsServed atomic.Int64
	blocksServed   atomic.Int64
	appends        atomic.Int64
	appendPostings atomic.Int64
	appendBytes    atomic.Int64
	recent         atomic.Int64
	prevRecent     atomic.Int64
	hot            *SpaceSaving
}

// NewLoad returns a Load tracking up to topK hot terms (DefaultHotTerms
// when topK <= 0).
func NewLoad(topK int) *Load {
	if topK <= 0 {
		topK = DefaultHotTerms
	}
	return &Load{hot: NewSpaceSaving(topK)}
}

// Serve charges this peer with delivering n postings of a term from its
// local store (Get, Scan, or a DPP block stream).
func (l *Load) Serve(term string, n int) {
	if l == nil || n <= 0 {
		return
	}
	b := int64(n) * PostingWireBytes
	l.bytesServed.Add(b)
	l.postingsServed.Add(int64(n))
	l.recent.Add(b)
	l.hot.Add(CanonicalTerm(term), b)
}

// ServeBlock counts one DPP posting block (or batched block fetch
// element) served by this peer.
func (l *Load) ServeBlock() {
	if l == nil {
		return
	}
	l.blocksServed.Add(1)
}

// Append charges this peer with storing n appended postings of a term.
func (l *Load) Append(term string, n int) {
	if l == nil || n <= 0 {
		return
	}
	b := int64(n) * PostingWireBytes
	l.appends.Add(1)
	l.appendPostings.Add(int64(n))
	l.appendBytes.Add(b)
	l.hot.Add(CanonicalTerm(term), b)
}

// BytesServed returns the posting bytes this peer has served.
func (l *Load) BytesServed() int64 {
	if l == nil {
		return 0
	}
	return l.bytesServed.Load()
}

// BlocksServed returns the DPP blocks this peer has served.
func (l *Load) BlocksServed() int64 {
	if l == nil {
		return 0
	}
	return l.blocksServed.Load()
}

// Appends returns the append operations this peer has absorbed.
func (l *Load) Appends() int64 {
	if l == nil {
		return 0
	}
	return l.appends.Load()
}

// HotTerms returns the sketch's current top-n terms by byte weight.
func (l *Load) HotTerms(n int) []HotTerm {
	if l == nil {
		return nil
	}
	return l.hot.Top(n)
}

// RecentBytes is the serving-rate gauge replica selection balances on:
// the posting bytes served over the current and previous Roll windows.
// Cumulative counters never cool down, so a peer that was hot an hour
// ago would look loaded forever; the two-window sum decays to zero
// after two idle rolls while staying non-zero across a window edge.
func (l *Load) RecentBytes() int64 {
	if l == nil {
		return 0
	}
	return l.recent.Load() + l.prevRecent.Load()
}

// Roll advances the recency window: the replication controller calls it
// once per control tick, so "recent" always means "the last one to two
// ticks".
func (l *Load) Roll() {
	if l == nil {
		return
	}
	l.prevRecent.Store(l.recent.Swap(0))
}

// DecayHot ages the hot-term sketch by factor (0 < factor < 1), so
// terms that stopped being queried fall back below the promotion
// threshold and the controller can demote them.
func (l *Load) DecayHot(factor float64) {
	if l == nil {
		return
	}
	l.hot.Decay(factor)
}

// LoadExport is the JSON shape of /debug/load.
type LoadExport struct {
	BytesServed    int64     `json:"bytes_served"`
	PostingsServed int64     `json:"postings_served"`
	BlocksServed   int64     `json:"blocks_served"`
	Appends        int64     `json:"appends"`
	AppendPostings int64     `json:"append_postings"`
	AppendBytes    int64     `json:"append_bytes"`
	RecentBytes    int64     `json:"recent_bytes"`
	HotTerms       []HotTerm `json:"hot_terms"`
}

// Export returns a point-in-time copy of the counters and the full
// hot-term sketch.
func (l *Load) Export() LoadExport {
	if l == nil {
		return LoadExport{}
	}
	return LoadExport{
		BytesServed:    l.bytesServed.Load(),
		PostingsServed: l.postingsServed.Load(),
		BlocksServed:   l.blocksServed.Load(),
		Appends:        l.appends.Load(),
		AppendPostings: l.appendPostings.Load(),
		AppendBytes:    l.appendBytes.Load(),
		RecentBytes:    l.RecentBytes(),
		HotTerms:       l.hot.Top(0),
	}
}

// CanonicalTerm maps a store key to the term it belongs to for load
// attribution: DPP overflow pseudo-keys "overflow:<n>:<term>" count
// against their real term, everything else against itself.
func CanonicalTerm(key string) string {
	rest, ok := strings.CutPrefix(key, "overflow:")
	if !ok {
		return key
	}
	i := strings.IndexByte(rest, ':')
	if i <= 0 {
		return key
	}
	for _, c := range rest[:i] {
		if c < '0' || c > '9' {
			return key
		}
	}
	return rest[i+1:]
}

// HotTerm is one entry of the space-saving sketch. Bytes overestimates
// the term's true byte weight by at most Err.
type HotTerm struct {
	Term  string `json:"term"`
	Bytes int64  `json:"bytes"`
	Err   int64  `json:"err,omitempty"`
}

// SpaceSaving is the classic bounded top-K heavy-hitter sketch
// (Metwally et al.), weighted: it tracks at most k terms, and when a
// new term arrives at capacity it replaces the minimum-weight entry,
// inheriting its weight as the new entry's error bound. Any term whose
// true weight exceeds total/k is guaranteed to be present. Safe for
// concurrent use.
type SpaceSaving struct {
	mu    sync.Mutex
	k     int
	items map[string]*HotTerm
}

// NewSpaceSaving returns a sketch of capacity k (minimum 1).
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		k = 1
	}
	return &SpaceSaving{k: k, items: make(map[string]*HotTerm, k)}
}

// Add charges w to a term.
func (s *SpaceSaving) Add(term string, w int64) {
	if s == nil || w <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if it, ok := s.items[term]; ok {
		it.Bytes += w
		return
	}
	if len(s.items) < s.k {
		s.items[term] = &HotTerm{Term: term, Bytes: w}
		return
	}
	// At capacity: evict the minimum, inherit its weight as error.
	var min *HotTerm
	for _, it := range s.items {
		if min == nil || it.Bytes < min.Bytes {
			min = it
		}
	}
	delete(s.items, min.Term)
	s.items[term] = &HotTerm{Term: term, Bytes: min.Bytes + w, Err: min.Bytes}
}

// Decay scales every tracked weight by factor (clamped to [0,1)) and
// drops entries that reach zero. Error bounds scale with the weights:
// an entry's Err is the weight it inherited from the entry it evicted,
// and that inherited weight ages at the same rate as the real traffic
// it stood for. Keeping Err fixed while Bytes shrinks would let a key
// evicted and re-inserted within one decay window report a stale count
// — mostly inherited error — as if it were fresh traffic.
func (s *SpaceSaving) Decay(factor float64) {
	if s == nil || factor >= 1 {
		return
	}
	if factor < 0 {
		factor = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for term, it := range s.items {
		it.Bytes = int64(float64(it.Bytes) * factor)
		it.Err = int64(float64(it.Err) * factor)
		if it.Bytes <= 0 {
			delete(s.items, term)
		}
	}
}

// Top returns the n heaviest tracked terms (all of them when n <= 0),
// sorted by weight descending, ties broken by term for determinism.
func (s *SpaceSaving) Top(n int) []HotTerm {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]HotTerm, 0, len(s.items))
	for _, it := range s.items {
		out = append(out, *it)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Term < out[j].Term
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
