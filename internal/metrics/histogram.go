package metrics

import (
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// Operation names under which the system records latency histograms.
// Instrumentation sites use these constants so experiment harnesses and
// the admin endpoint can query them without string drift.
const (
	// OpLookup is one iterative Kademlia lookup, all rounds included.
	OpLookup = "lookup"
	// OpAppend is one replicated posting append.
	OpAppend = "append"
	// OpPostingsTransfer is the time a query's twig join spent blocked
	// waiting on posting-list streams (the paper's "data transfer").
	OpPostingsTransfer = "postings-transfer"
	// OpTwigJoin is the twig join's own compute time, transfer excluded.
	OpTwigJoin = "twig-join"
	// OpFilterExchange is the SBF reduce exchange of one query.
	OpFilterExchange = "filter-exchange"
	// OpSBFBuild is the construction of one AB/DB filter at a home peer.
	OpSBFBuild = "sbf-build"
	// OpDPPFetch is one DPP partitioned fetch, all blocks included.
	OpDPPFetch = "dpp-fetch"
	// OpQueryIndex is a query's whole phase one (index query).
	OpQueryIndex = "query-index"
	// OpQueryTotal is a query end to end, phase two included.
	OpQueryTotal = "query-total"
	// OpSecondPhase is a query's phase two (answer retrieval).
	OpSecondPhase = "second-phase"
)

// Per-RPC-type operation names: one histogram per message type, client
// side, retries included. Declared here rather than derived from the
// message type's String() so the exposition names cannot drift when a
// message type is renamed.
const (
	OpRPCPing      = "rpc:ping"
	OpRPCFindNode  = "rpc:find-node"
	OpRPCAppend    = "rpc:append"
	OpRPCGet       = "rpc:get"
	OpRPCGetStream = "rpc:get-stream"
	OpRPCGetBatch  = "rpc:get-batch"
	OpRPCDelete    = "rpc:delete"
	OpRPCDeleteKey = "rpc:delete-key"
	OpRPCApp       = "rpc:app"
	OpRPCDigest    = "rpc:digest"
	OpRPCRepair    = "rpc:repair"
	OpRPCTerms     = "rpc:terms"
	OpRPCOther     = "rpc:other"
)

// declaredOps is the closed set of operation names instrumentation may
// record under. Tests assert every observed op is in it, so a new
// Observe site must add its constant here.
var declaredOps = map[string]bool{
	OpLookup:           true,
	OpAppend:           true,
	OpPostingsTransfer: true,
	OpTwigJoin:         true,
	OpFilterExchange:   true,
	OpSBFBuild:         true,
	OpDPPFetch:         true,
	OpQueryIndex:       true,
	OpQueryTotal:       true,
	OpSecondPhase:      true,
	OpRPCPing:          true,
	OpRPCFindNode:      true,
	OpRPCAppend:        true,
	OpRPCGet:           true,
	OpRPCGetStream:     true,
	OpRPCGetBatch:      true,
	OpRPCDelete:        true,
	OpRPCDeleteKey:     true,
	OpRPCApp:           true,
	OpRPCDigest:        true,
	OpRPCRepair:        true,
	OpRPCTerms:         true,
	OpRPCOther:         true,
}

// IsDeclaredOp reports whether op is one of the declared Op* constants.
func IsDeclaredOp(op string) bool { return declaredOps[op] }

// DeclaredOps returns the sorted declared operation names.
func DeclaredOps() []string {
	ops := make([]string, 0, len(declaredOps))
	for op := range declaredOps {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	return ops
}

// histBuckets is the number of log-spaced buckets: powers of two of a
// microsecond, 1µs .. ~9.1h, which comfortably brackets everything from
// an in-process proc call to a cross-continent retry storm.
const histBuckets = 46

// NumBuckets is the bucket count, exported for exposition writers and
// scrapers that reconstruct the histogram shape.
const NumBuckets = histBuckets

// bucketBound returns the inclusive upper bound of bucket i.
func bucketBound(i int) time.Duration {
	return time.Microsecond << uint(i)
}

// BucketBound returns the inclusive upper bound of bucket i.
func BucketBound(i int) time.Duration { return bucketBound(i) }

// Exemplar ties one concrete observation — and the trace that explains
// it — to a histogram bucket: the operator reading a p99 bucket on
// /metrics can jump straight to a captured trace instead of trying to
// reproduce the tail. Each bucket keeps its most recent exemplar.
type Exemplar struct {
	// TraceID identifies the trace of the exemplified observation.
	TraceID uint64
	// Value is the observed latency.
	Value time.Duration
	// At is when the observation happened.
	At time.Time
}

// Histogram is a fixed-bucket latency histogram with power-of-two
// bucket bounds starting at 1µs. Recording is lock-free (one atomic add
// per observation plus count/sum upkeep), so it is cheap enough to sit
// on RPC hot paths. The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	// exemplars holds the latest traced observation per bucket; an
	// untraced Record leaves them untouched, so the exemplar machinery
	// costs nothing until a traced query observes.
	exemplars [histBuckets]atomic.Pointer[Exemplar]
}

// bucketFor maps a duration to its bucket index: the smallest i with
// d <= 1µs<<i. Sub-microsecond observations land in bucket 0.
func bucketFor(d time.Duration) int {
	us := d.Nanoseconds() / 1e3
	if us <= 1 {
		return 0
	}
	i := bits.Len64(uint64(us - 1)) // ceil(log2(us))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(d.Nanoseconds())
}

// RecordExemplar adds one observation carrying a trace id: besides the
// bucket counts, the bucket's exemplar slot is replaced, so the latest
// traced observation of each latency band stays reachable from the
// exposition. A zero traceID degrades to a plain Record.
func (h *Histogram) RecordExemplar(d time.Duration, traceID uint64) {
	if h == nil {
		return
	}
	if traceID == 0 {
		h.Record(d)
		return
	}
	if d < 0 {
		d = 0
	}
	i := bucketFor(d)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(d.Nanoseconds())
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: d, At: time.Now()})
}

// BucketExemplar returns bucket i's latest exemplar, or nil when no
// traced observation has landed there.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if h == nil || i < 0 || i >= histBuckets {
		return nil
	}
	return h.exemplars[i].Load()
}

// Exemplars returns the non-nil exemplars by ascending bucket index.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	var out []Exemplar
	for i := 0; i < histBuckets; i++ {
		if e := h.exemplars[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// BucketCount returns the (non-cumulative) count of bucket i.
func (h *Histogram) BucketCount(i int) int64 {
	if h == nil || i < 0 || i >= histBuckets {
		return 0
	}
	return h.counts[i].Load()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the average observation, or 0 with no data.
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Quantile returns the q-th quantile (0 <= q <= 1), interpolated
// linearly inside the bucket the quantile falls in. With no
// observations it returns 0. Quantiles read the buckets without
// stopping writers, so a concurrent snapshot is approximate — exactly
// as accurate as the histogram's buckets themselves.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the desired observation, 1-based.
	rank := int64(q*float64(total-1)) + 1
	var seen int64
	for i := 0; i < histBuckets; i++ {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			lo := time.Duration(0)
			if i > 0 {
				lo = bucketBound(i - 1)
			}
			hi := bucketBound(i)
			// Interpolate by the rank's position within this bucket.
			frac := float64(rank-seen) / float64(n)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		seen += n
	}
	return bucketBound(histBuckets - 1)
}
