package metrics

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordExemplar(t *testing.T) {
	var h Histogram
	h.RecordExemplar(3*time.Microsecond, 0xdead)
	h.RecordExemplar(3*time.Microsecond, 0xbeef) // same bucket: latest wins
	h.Record(500 * time.Millisecond)             // untraced: no exemplar

	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	i := bucketFor(3 * time.Microsecond)
	e := h.BucketExemplar(i)
	if e == nil || e.TraceID != 0xbeef || e.Value != 3*time.Microsecond {
		t.Fatalf("bucket exemplar = %+v", e)
	}
	if e := h.BucketExemplar(bucketFor(500 * time.Millisecond)); e != nil {
		t.Fatalf("untraced bucket grew an exemplar: %+v", e)
	}
	if all := h.Exemplars(); len(all) != 1 || all[0].TraceID != 0xbeef {
		t.Fatalf("exemplars = %+v", all)
	}
	if e.At.IsZero() {
		t.Error("exemplar At not stamped")
	}
}

func TestRecordExemplarZeroTraceID(t *testing.T) {
	var h Histogram
	h.RecordExemplar(time.Millisecond, 0)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if all := h.Exemplars(); len(all) != 0 {
		t.Fatalf("zero trace id left exemplars %+v", all)
	}
}

func TestExemplarNilSafe(t *testing.T) {
	var h *Histogram
	h.RecordExemplar(time.Millisecond, 1)
	if h.BucketExemplar(0) != nil || h.Exemplars() != nil {
		t.Fatal("nil histogram returned exemplars")
	}
	var c *Collector
	c.ObserveExemplar(OpQueryTotal, time.Millisecond, 1)
}

func TestCollectorObserveExemplar(t *testing.T) {
	c := NewCollector()
	c.ObserveExemplar(OpQueryTotal, 2*time.Millisecond, 0xabc)
	c.ObserveExemplar(OpQueryTotal, 4*time.Second, 0)

	h := c.Hist(OpQueryTotal)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	all := h.Exemplars()
	if len(all) != 1 || all[0].TraceID != 0xabc {
		t.Fatalf("exemplars = %+v", all)
	}
}

func TestPromExemplarEmission(t *testing.T) {
	c := NewCollector()
	c.ObserveExemplar(OpQueryTotal, 3*time.Microsecond, 0x1234)
	c.Observe(OpQueryTotal, 100*time.Microsecond)

	var buf bytes.Buffer
	if err := WriteProm(&buf, PromOptions{Collector: c}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := fmt.Sprintf("kadop_op_latency_seconds_bucket{op=\"query-total\",le=\"4e-06\"} 1 # {trace_id=\"%016x\"} 3e-06\n", 0x1234)
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing exemplar line %q:\n%s", want, out)
	}
	// Untraced buckets stay classic.
	if strings.Count(out, " # {") != 1 {
		t.Fatalf("want exactly one exemplar suffix:\n%s", out)
	}
}

func TestPromBuildInfo(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, PromOptions{BuildInfo: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "kadop_build_info{go=\"go") {
		t.Fatalf("missing build info:\n%s", out)
	}
	if !strings.Contains(out, "kadop_process_start_time_seconds ") {
		t.Fatalf("missing start time gauge:\n%s", out)
	}

	// Off by default, so golden expositions stay byte-stable.
	buf.Reset()
	if err := WriteProm(&buf, PromOptions{}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty options rendered %q", buf.String())
	}
}

// TestExemplarConcurrent hammers traced and untraced observations while
// reading exemplars; meaningful under -race.
func TestExemplarConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; ; i++ {
				select {
				case <-stop:
					return
				default:
					c.ObserveExemplar(OpLookup, time.Duration(i)*time.Microsecond, uint64(g*1000+i))
					c.Observe(OpLookup, time.Microsecond)
				}
			}
		}(g)
	}
	for i := 0; i < 100; i++ {
		h := c.Hist(OpLookup)
		for _, e := range h.Exemplars() {
			if e.TraceID == 0 {
				t.Error("zero trace id stored as exemplar")
			}
		}
		var buf bytes.Buffer
		if err := WriteProm(&buf, PromOptions{Collector: c}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
