package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 0}, // sub-µs remainder truncates
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},
		{8 * time.Microsecond, 3},
		{time.Millisecond, 10},      // 1024µs > 512µs(bucket 9), <= 1024µs(bucket 10)
		{time.Second, 20},           // 1e6µs <= 2^20µs
		{365 * 24 * time.Hour, 45},  // clamps into the last bucket
		{-time.Second, 0},           // callers clamp, bucketFor tolerates
	}
	for _, c := range cases {
		d := c.d
		if d < 0 {
			d = 0
		}
		if got := bucketFor(d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every bucket's bound must be exactly double the previous.
	for i := 1; i < histBuckets; i++ {
		if bucketBound(i) != 2*bucketBound(i-1) {
			t.Fatalf("bucket %d bound %v not double %v", i, bucketBound(i), bucketBound(i-1))
		}
	}
}

func TestBucketForBoundaryInverse(t *testing.T) {
	// A duration exactly on a bucket bound must land in that bucket.
	for i := 0; i < histBuckets; i++ {
		if got := bucketFor(bucketBound(i)); got != i {
			t.Errorf("bucketFor(bound(%d)) = %d", i, got)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := &Histogram{}
	// 100 observations all in bucket (1ms, 2ms].
	for i := 0; i < 100; i++ {
		h.Record(1500 * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	lo, hi := 1024*time.Microsecond, 2048*time.Microsecond
	if p50 <= lo || p50 > hi {
		t.Errorf("p50 %v outside bucket (%v, %v]", p50, lo, hi)
	}
	// Interpolation: p99 must sit higher in the bucket than p10.
	if h.Quantile(0.99) <= h.Quantile(0.10) {
		t.Errorf("p99 %v <= p10 %v", h.Quantile(0.99), h.Quantile(0.10))
	}
	// Monotone across quantiles.
	prev := time.Duration(0)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("quantile %v = %v < previous %v", q, v, prev)
		}
		prev = v
	}
}

func TestQuantileSplitBuckets(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 90; i++ {
		h.Record(10 * time.Microsecond) // bucket 4 (8µs, 16µs]
	}
	for i := 0; i < 10; i++ {
		h.Record(10 * time.Millisecond) // far tail
	}
	if p50 := h.Quantile(0.5); p50 > 16*time.Microsecond {
		t.Errorf("p50 %v should be in the low bucket", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 8*time.Millisecond {
		t.Errorf("p99 %v should be in the tail bucket", p99)
	}
	if h.Mean() < 500*time.Microsecond { // 0.9*10µs + 0.1*10ms ≈ 1ms
		t.Errorf("mean %v too low", h.Mean())
	}
}

func TestQuantileMaxReturnsTopBucketBound(t *testing.T) {
	// q=1.0 must land in the highest occupied bucket and, because the
	// full bucket population is below the rank, interpolate all the way
	// to that bucket's upper bound — never the histogram-wide maximum.
	h := &Histogram{}
	for i := 0; i < 50; i++ {
		h.Record(3 * time.Microsecond) // bucket 2 (2µs, 4µs]
	}
	for i := 0; i < 5; i++ {
		h.Record(100 * time.Microsecond) // bucket 7 (64µs, 128µs]
	}
	if got, want := h.Quantile(1.0), bucketBound(7); got != want {
		t.Errorf("q=1.0 = %v, want top occupied bucket bound %v", got, want)
	}
	// q just below 1 still sits inside the top bucket, not past it.
	if p := h.Quantile(0.999); p <= bucketBound(6) || p > bucketBound(7) {
		t.Errorf("q=0.999 = %v outside top bucket (%v, %v]", p, bucketBound(6), bucketBound(7))
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	// With one observation, total-1 = 0 so every q maps to rank 1 with
	// frac = 1/1: all quantiles return the observation's bucket upper
	// bound, not 0 and not an interpolated interior point.
	h := &Histogram{}
	h.Record(10 * time.Microsecond) // bucket 4 (8µs, 16µs]
	want := bucketBound(4)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != want {
			t.Errorf("single observation: Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	// Same invariant at the extremes of the bucket range.
	h0 := &Histogram{}
	h0.Record(0) // bucket 0
	if got := h0.Quantile(1.0); got != bucketBound(0) {
		t.Errorf("single zero observation: q=1.0 = %v, want %v", got, bucketBound(0))
	}
	hTop := &Histogram{}
	hTop.Record(365 * 24 * time.Hour) // clamps into the last bucket
	if got := hTop.Quantile(1.0); got != bucketBound(histBuckets-1) {
		t.Errorf("single huge observation: q=1.0 = %v, want %v", got, bucketBound(histBuckets-1))
	}
	// Out-of-range q values clamp rather than panic or skew.
	if h.Quantile(-0.5) != want || h.Quantile(2.0) != want {
		t.Error("out-of-range q should clamp to [0, 1]")
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var h *Histogram
	h.Record(time.Second)
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Error("nil histogram should report zeros")
	}
	h2 := &Histogram{}
	if h2.Quantile(0.99) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Record(time.Duration(k+1) * time.Microsecond)
				_ = h.Quantile(0.5) // readers race with writers by design
			}
		}(i)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
}

func TestCollectorObserve(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 10; i++ {
		c.Observe(OpLookup, time.Millisecond)
	}
	if c.Hist(OpLookup).Count() != 10 {
		t.Errorf("lookup count = %d", c.Hist(OpLookup).Count())
	}
	if q := c.Quantile(OpLookup, 0.95); q == 0 {
		t.Error("quantile should be nonzero")
	}
	if q := c.Quantile("never-observed", 0.95); q != 0 {
		t.Errorf("unobserved op quantile = %v", q)
	}
	if ops := c.Ops(); len(ops) != 1 || ops[0] != OpLookup {
		t.Errorf("ops = %v", ops)
	}
	snap := c.Snapshot()
	if !strings.Contains(snap, OpLookup) || !strings.Contains(snap, "p95") {
		t.Errorf("snapshot missing histogram lines:\n%s", snap)
	}
	c.Reset()
	if c.Hist(OpLookup) != nil {
		t.Error("reset should clear histograms")
	}

	var nilC *Collector
	nilC.Observe(OpLookup, time.Second) // must not panic
	if nilC.Quantile(OpLookup, 0.5) != 0 || nilC.Ops() != nil || nilC.ClassBytes() != nil {
		t.Error("nil collector histogram accessors should be zero")
	}
	if ex := nilC.Export(); len(ex.Ops) != 0 {
		t.Error("nil export should be empty")
	}
}

func TestCollectorObserveConcurrent(t *testing.T) {
	c := NewCollector()
	ops := []string{OpLookup, OpAppend, OpTwigJoin, OpPostingsTransfer}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Observe(ops[(k+j)%len(ops)], time.Duration(j)*time.Microsecond)
			}
		}(i)
	}
	wg.Wait()
	var total int64
	for _, op := range ops {
		total += c.Hist(op).Count()
	}
	if total != 4000 {
		t.Errorf("total observations = %d, want 4000", total)
	}
}

func TestExport(t *testing.T) {
	c := NewCollector()
	c.Count(Postings, 100)
	c.CountEvent(EventRetry)
	c.Observe(OpQueryTotal, 2*time.Millisecond)
	ex := c.Export()
	if ex.Classes["postings"].Bytes != 100 || ex.Classes["postings"].Messages != 1 {
		t.Errorf("classes = %+v", ex.Classes)
	}
	if ex.Events["retries"] != 1 {
		t.Errorf("events = %+v", ex.Events)
	}
	st, ok := ex.Ops[OpQueryTotal]
	if !ok || st.Count != 1 || st.P50 == 0 || st.P50Str == "" {
		t.Errorf("ops = %+v", ex.Ops)
	}
}
