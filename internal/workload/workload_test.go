package workload

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"kadop/internal/dyadic"
	"kadop/internal/pattern"
	"kadop/internal/xmltree"
)

func TestDBLPDeterministic(t *testing.T) {
	a := DBLP{Seed: 1, Records: 100}.Documents()
	b := DBLP{Seed: 1, Records: 100}.Documents()
	if len(a) != len(b) {
		t.Fatal("non-deterministic document count")
	}
	for i := range a {
		if xmltree.Serialize(a[i].Doc) != xmltree.Serialize(b[i].Doc) {
			t.Fatalf("document %d differs between runs", i)
		}
	}
}

func TestDBLPStructure(t *testing.T) {
	docs := DBLP{Seed: 2, Records: 500}.Documents()
	if len(docs) != 20 { // 500 records / 25 per doc
		t.Fatalf("documents = %d", len(docs))
	}
	records, authors, titles := 0, 0, 0
	for _, d := range docs {
		if d.Doc.Root.Label != "dblp" {
			t.Fatal("root label")
		}
		d.Doc.Walk(func(n *xmltree.Node) {
			switch n.Label {
			case "article", "inproceedings":
				records++
			case "author":
				authors++
			case "title":
				titles++
			}
		})
	}
	if records != 500 || titles != 500 {
		t.Fatalf("records=%d titles=%d", records, titles)
	}
	if authors < 500 {
		t.Fatalf("authors=%d", authors)
	}
}

func TestDBLPSkewAndRareAuthor(t *testing.T) {
	docs := DBLP{Seed: 3, Records: 2000}.Documents()
	freq := map[string]int{}
	ullman := 0
	for _, d := range docs {
		d.Doc.Walk(func(n *xmltree.Node) {
			if n.Label == "author" {
				for _, w := range n.Words {
					freq[w]++
					if w == "ullman" {
						ullman++
					}
				}
			}
		})
	}
	if ullman != 4 { // 2000/500
		t.Errorf("ullman occurrences = %d, want 4", ullman)
	}
	// Skew: the most frequent author token must dwarf the median.
	var counts []int
	for w, c := range freq {
		if strings.HasPrefix(w, "author") {
			counts = append(counts, c)
			_ = w
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	if len(counts) < 10 {
		t.Fatal("too few distinct authors")
	}
	if counts[0] < 5*counts[len(counts)/2] {
		t.Errorf("author distribution not skewed: top=%d median=%d", counts[0], counts[len(counts)/2])
	}
}

func TestDBLPDocSizeNearTarget(t *testing.T) {
	docs := DBLP{Seed: 4, Records: 250}.Documents()
	for _, d := range docs {
		size := len(xmltree.Serialize(d.Doc))
		if size < 2_000 || size > 60_000 {
			t.Errorf("document %s is %d bytes; expected a ~20KB-scale document", d.URI, size)
		}
	}
	if SizeBytes(docs) <= 0 {
		t.Error("SizeBytes should be positive")
	}
}

func TestINEXCorpus(t *testing.T) {
	c := INEX{Seed: 5, Docs: 200, Matches: 10, SecondType: true}.Generate()
	if len(c.Hosts) != 200 || len(c.Files) != 200 {
		t.Fatalf("hosts=%d files=%d", len(c.Hosts), len(c.Files))
	}
	// Every host has exactly one include resolvable by the corpus.
	for _, h := range c.Hosts {
		includes := 0
		h.Doc.Walk(func(n *xmltree.Node) {
			if n.Include != "" {
				includes++
				if _, err := c.Resolve(n.Include); err != nil {
					t.Fatalf("unresolvable include %q", n.Include)
				}
			}
		})
		if includes != 1 {
			t.Fatalf("host %s has %d includes", h.URI, includes)
		}
	}
	if _, err := c.Resolve("nope.xml"); err == nil {
		t.Error("unknown URI should fail")
	}
	// Exactly Matches hosts match the canonical query when inlined.
	q := pattern.MustParse(INEXQuery)
	if q == nil {
		t.Fatal("INEXQuery must parse")
	}
	matches := 0
	for _, h := range c.Hosts {
		title := false
		h.Doc.Walk(func(n *xmltree.Node) {
			if n.Label == "title" {
				for _, w := range n.Words {
					if w == "system" {
						title = true
					}
				}
			}
		})
		var fileHasInterface bool
		h.Doc.Walk(func(n *xmltree.Node) {
			if n.Include != "" {
				raw, _ := c.Resolve(n.Include)
				if strings.Contains(string(raw), "interface") && strings.HasPrefix(n.Include, "abstract") {
					fileHasInterface = true
				}
			}
		})
		if title && fileHasInterface {
			matches++
		}
	}
	if matches != 10 {
		t.Errorf("planted matches = %d, want 10", matches)
	}
}

func TestTable1ShapesCoverSizes(t *testing.T) {
	for _, s := range Table1Shapes() {
		s.Elements = 20_000 // keep the test fast; the bench uses full sizes
		widths := s.Widths(7)
		if len(widths) < s.Elements/2 {
			t.Fatalf("%s: only %d widths", s.Name, len(widths))
		}
		var sum float64
		for _, w := range widths {
			sum += float64(dyadic.CoverSize(1, w))
		}
		avg := sum / float64(len(widths))
		// The paper's Table 1 averages lie in [1.23, 1.55]; the generated
		// shapes must land in the same small-cover regime.
		if avg < 1.05 || avg > 2.2 {
			t.Errorf("%s: avg |D(e)| = %.2f, outside the plausible XML band", s.Name, avg)
		}
	}
}

func TestQueryMixParses(t *testing.T) {
	qs := QueryMix(11, 50)
	if len(qs) != 50 {
		t.Fatalf("queries = %d", len(qs))
	}
	for _, s := range qs {
		if _, err := pattern.Parse(s); err != nil {
			t.Errorf("generated query %q does not parse: %v", s, err)
		}
	}
}

func TestZipf(t *testing.T) {
	// Sanity: rank 0 must be the most frequent.
	rng := newRng(13)
	z := NewZipf(rng, 1.4, 100)
	counts := make([]int, 100)
	for i := 0; i < 10000; i++ {
		counts[z.Next()]++
	}
	max := 0
	for i, c := range counts {
		if c > counts[max] {
			max = i
		}
	}
	if max != 0 {
		t.Errorf("most frequent rank = %d, want 0", max)
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
