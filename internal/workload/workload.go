// Package workload generates the synthetic corpora and query workloads
// of the experiments. The paper's datasets are not redistributable (and
// partly proprietary), so each generator reproduces the statistical
// properties the corresponding experiment depends on:
//
//   - DBLP: bibliographic records with the heavy skew of real DBLP —
//     a few element labels (author, title, article, inproceedings) with
//     enormous posting lists, a Zipf-distributed author population, and
//     a seeded rare author ("Ullman" as in the paper's queries). The
//     corpus is cut into ~20 KB documents, as the paper cuts DBLP.
//   - INEX: the INEX-HCO-like setting of Section 6 — publication
//     records, each referencing a separate ~1 KB abstract file, with a
//     configurable number of planted query matches.
//   - Shapes: element-width distributions fitted to the five datasets
//     of Table 1 (IMDB, XMark, SwissProt, NASA, DBLP), for measuring
//     average dyadic-cover sizes.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"kadop/internal/xmltree"
)

// Zipf draws ranks with P(k) ~ 1/(k+q)^s, deterministic under its rng.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s > 1.
func NewZipf(rng *rand.Rand, s float64, n uint64) *Zipf {
	return &Zipf{z: rand.NewZipf(rng, s, 1, n-1)}
}

// Next draws one rank.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// DBLP generates a DBLP-like corpus.
type DBLP struct {
	// Seed fixes the pseudo-random stream.
	Seed int64
	// Records is the number of bibliographic records to generate.
	Records int
	// RecordsPerDoc cuts the corpus into documents (the paper uses
	// 20 KB documents, about 25 records each). Default 25.
	RecordsPerDoc int
	// Authors is the size of the author population (default 2000).
	Authors int
	// RareAuthor is planted with RareCount occurrences (defaults
	// "Ullman", 1 in 500 records).
	RareAuthor string
	RareCount  int
}

// titleWords is the vocabulary of generated titles.
var titleWords = []string{
	"data", "systems", "distributed", "query", "processing", "xml",
	"indexing", "networks", "peer", "storage", "optimization", "views",
	"semantics", "streams", "joins", "algebra", "web", "integration",
	"mining", "transactions", "logic", "models", "design", "analysis",
}

func (g DBLP) defaults() DBLP {
	if g.RecordsPerDoc <= 0 {
		g.RecordsPerDoc = 25
	}
	if g.Authors <= 0 {
		g.Authors = 2000
	}
	if g.RareAuthor == "" {
		g.RareAuthor = "Ullman"
	}
	if g.RareCount <= 0 {
		g.RareCount = (g.Records + 499) / 500
		if g.RareCount == 0 {
			g.RareCount = 1
		}
	}
	return g
}

// Documents generates the corpus as parsed documents with their URIs.
// Document construction goes through the tree builder directly (no
// serialisation round trip), matching what the publishing pipeline
// indexes for the same logical content.
func (g DBLP) Documents() []GeneratedDoc {
	g = g.defaults()
	rng := rand.New(rand.NewSource(g.Seed))
	zipf := NewZipf(rng, 1.4, uint64(g.Authors))

	rare := map[int]bool{}
	for len(rare) < g.RareCount && len(rare) < g.Records {
		rare[rng.Intn(g.Records)] = true
	}

	var docs []GeneratedDoc
	rec := 0
	docID := 0
	for rec < g.Records {
		b := xmltree.NewBuilder()
		b.Open("dblp")
		for i := 0; i < g.RecordsPerDoc && rec < g.Records; i++ {
			kind := "article"
			// Rare-author records are always articles, so the canonical
			// //article//author[. contains "Ullman"] query has exactly
			// RareCount answers at every seed.
			if !rare[rec] && rng.Float64() < 0.4 {
				kind = "inproceedings"
			}
			b.Open(kind)
			nAuthors := 1 + rng.Intn(3)
			for a := 0; a < nAuthors; a++ {
				name := fmt.Sprintf("author%04d lastname%04d", zipf.Next(), zipf.Next())
				if a == 0 && rare[rec] {
					name = "Jeffrey " + g.RareAuthor
				}
				b.Leaf("author", name)
			}
			b.Leaf("title", g.title(rng))
			b.Leaf("year", fmt.Sprintf("%d", 1990+rng.Intn(18)))
			if kind == "article" {
				b.Leaf("journal", fmt.Sprintf("journal%02d", rng.Intn(40)))
			} else {
				b.Leaf("booktitle", fmt.Sprintf("conf%02d", rng.Intn(60)))
			}
			b.Close()
			rec++
		}
		b.Close()
		doc, err := b.Document()
		if err != nil {
			// The builder is driven by this generator only; an error is a
			// programming bug, not an input condition.
			panic(fmt.Sprintf("workload: dblp builder: %v", err))
		}
		docs = append(docs, GeneratedDoc{
			URI: fmt.Sprintf("dblp-%05d.xml", docID),
			Doc: doc,
		})
		docID++
	}
	return docs
}

func (g DBLP) title(rng *rand.Rand) string {
	n := 3 + rng.Intn(5)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = titleWords[rng.Intn(len(titleWords))]
	}
	return strings.Join(parts, " ")
}

// GeneratedDoc is one generated document.
type GeneratedDoc struct {
	URI string
	Doc *xmltree.Document
}

// SizeBytes estimates the corpus size as serialised XML, used to label
// experiment axes in "MB of published data" like the paper's figures.
func SizeBytes(docs []GeneratedDoc) int {
	n := 0
	for _, d := range docs {
		n += len(xmltree.Serialize(d.Doc))
	}
	return n
}

// INEX generates the Section 6 corpus: publication documents, each
// referencing a separate abstract file.
type INEX struct {
	Seed int64
	// Docs is the number of host documents (the paper uses 28 000 hosts
	// plus as many abstract files).
	Docs int
	// Matches plants this many true answers for the canonical query
	// //article[contains(.//title,'system')][contains(.//abstract,
	// 'interface')] (the paper's setting has 10).
	Matches int
	// SecondType makes every third reference an "appendix" instead of
	// an "abstract", giving representative-data-indexing a type to
	// prune on.
	SecondType bool
}

// INEXCorpus is a generated intensional corpus: host documents and the
// referenced files by URI.
type INEXCorpus struct {
	Hosts []GeneratedDoc
	Files map[string][]byte
}

// Resolve implements the fundex resolver over the generated files.
func (c *INEXCorpus) Resolve(uri string) ([]byte, error) {
	b, ok := c.Files[uri]
	if !ok {
		return nil, fmt.Errorf("workload: no such file %q", uri)
	}
	return b, nil
}

// Generate builds the corpus.
func (g INEX) Generate() *INEXCorpus {
	rng := rand.New(rand.NewSource(g.Seed))
	c := &INEXCorpus{Files: map[string][]byte{}}
	if g.Matches > g.Docs {
		g.Matches = g.Docs
	}
	match := map[int]bool{}
	for len(match) < g.Matches {
		match[rng.Intn(g.Docs)] = true
	}
	for i := 0; i < g.Docs; i++ {
		kind := "abstract"
		if g.SecondType && i%3 == 2 && !match[i] {
			kind = "appendix"
		}
		title := fmt.Sprintf("a study of %s number %d",
			titleWords[rng.Intn(len(titleWords))], i)
		body := fmt.Sprintf("this work discusses %s and %s in depth %d",
			titleWords[rng.Intn(len(titleWords))], titleWords[rng.Intn(len(titleWords))], i)
		if match[i] {
			title = fmt.Sprintf("a system view of %s number %d", titleWords[rng.Intn(len(titleWords))], i)
			body = fmt.Sprintf("an interface for %s explained %d", titleWords[rng.Intn(len(titleWords))], i)
		}
		fileURI := fmt.Sprintf("%s%05d.xml", kind, i)
		c.Files[fileURI] = []byte(fmt.Sprintf("<%s>%s</%s>", kind, body, kind))

		b := xmltree.NewBuilder()
		b.Open("article")
		b.Leaf("title", title)
		b.Leaf("year", fmt.Sprintf("%d", 1995+rng.Intn(12)))
		b.Include(fileURI)
		b.Close()
		doc, err := b.Document()
		if err != nil {
			panic(fmt.Sprintf("workload: inex builder: %v", err))
		}
		c.Hosts = append(c.Hosts, GeneratedDoc{URI: fmt.Sprintf("host%05d.xml", i), Doc: doc})
	}
	return c
}

// INEXQuery is the canonical Section 6 query over the INEX corpus.
const INEXQuery = `//article[contains(.//title,'system') and contains(.//abstract,'interface')]`

// Shape describes one Table-1 dataset's tree statistics: documents are
// generated with the given fan-out and depth profile, which determines
// the element width distribution and hence the dyadic cover sizes.
type Shape struct {
	Name     string
	MaxDepth int
	// Fanout is the mean number of children of an internal element.
	Fanout float64
	// LeafBias is the probability that a child is a leaf.
	LeafBias float64
	// Elements is the number of elements to generate (across documents
	// of ~DocSize elements each).
	Elements int
	DocSize  int
}

// Table1Shapes models the five datasets of Table 1. Fan-out and depth
// profiles are tuned so the generated width distributions land in the
// ballpark of the measured averages (|D(e)| between 1.2 and 1.6).
func Table1Shapes() []Shape {
	return []Shape{
		{Name: "IMDB", MaxDepth: 4, Fanout: 5, LeafBias: 0.75, Elements: 100_000, DocSize: 500},
		{Name: "XMark", MaxDepth: 8, Fanout: 4, LeafBias: 0.55, Elements: 200_000, DocSize: 1000},
		{Name: "SwissProt", MaxDepth: 4, Fanout: 6, LeafBias: 0.85, Elements: 200_000, DocSize: 800},
		{Name: "NASA", MaxDepth: 7, Fanout: 3, LeafBias: 0.5, Elements: 100_000, DocSize: 600},
		{Name: "DBLP", MaxDepth: 3, Fanout: 8, LeafBias: 0.9, Elements: 200_000, DocSize: 500},
	}
}

// Widths generates the shape's documents and returns every element's
// (start, end) width, the input to the dyadic-cover measurement.
func (s Shape) Widths(seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	var widths []uint64
	remaining := s.Elements
	for remaining > 0 {
		target := s.DocSize
		if target > remaining {
			target = remaining
		}
		n := s.genDoc(rng, target, &widths)
		remaining -= n
	}
	return widths
}

// genDoc simulates one document's tag numbering and records widths.
func (s Shape) genDoc(rng *rand.Rand, target int, widths *[]uint64) int {
	pos := uint64(1)
	count := 0
	var rec func(depth int)
	rec = func(depth int) {
		start := pos
		pos++
		count++
		if depth < s.MaxDepth && count < target {
			// Poisson-ish fan-out around the mean.
			n := int(math.Round(s.Fanout * (0.5 + rng.Float64())))
			for i := 0; i < n && count < target; i++ {
				if rng.Float64() < s.LeafBias {
					// Leaf child: two tag positions.
					*widths = append(*widths, 2)
					pos += 2
					count++
				} else {
					rec(depth + 1)
				}
			}
		}
		pos++ // closing tag
		*widths = append(*widths, pos-start)
	}
	rec(0)
	return count
}

// QueryMix returns n query strings over the DBLP corpus, each touching
// at least one long posting list, for the Section 4.3 traffic workload.
func QueryMix(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	templates := []string{
		`//article//author`,
		`//inproceedings//author`,
		`//article//title[. contains "%s"]`,
		`//dblp//author[. contains "author%04d"]`,
		`//article[//year]//author`,
		`//inproceedings//title[. contains "%s"]`,
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		t := templates[rng.Intn(len(templates))]
		switch strings.Count(t, "%") {
		case 0:
			out = append(out, t)
		default:
			if strings.Contains(t, "%s") {
				out = append(out, fmt.Sprintf(t, titleWords[rng.Intn(len(titleWords))]))
			} else {
				out = append(out, fmt.Sprintf(t, rng.Intn(2000)))
			}
		}
	}
	return out
}
