// Package admin serves the live introspection endpoint of a peer: a
// JSON metrics dump with latency percentiles, a recent-trace viewer,
// routing-table and store statistics, and net/http/pprof. It is wired
// behind the -debug-addr flag of the binaries and is off by default —
// a deployment that does not ask for it runs no HTTP listener at all.
package admin

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"kadop/internal/blockcache"
	"kadop/internal/dht"
	"kadop/internal/metrics"
	"kadop/internal/obs/flight"
	"kadop/internal/obs/slo"
	"kadop/internal/obs/stats"
	"kadop/internal/trace"
)

// Options name the peer internals the endpoint exposes. Every field is
// optional; absent subsystems render as empty sections.
type Options struct {
	// Collector supplies /debug/metrics (traffic classes, events, and
	// latency histograms) and the histogram/counter families of /metrics.
	Collector *metrics.Collector
	// Tracer supplies /debug/traces.
	Tracer *trace.Tracer
	// Node supplies the routing-table and store sections of /debug/peer.
	// It also supplies /debug/load and the load/registry families of
	// /metrics unless Load/Registry override it.
	Node *dht.Node
	// Docs reports the number of locally published documents (the KadoP
	// layer's count), shown on /debug/peer.
	Docs func() int
	// Cache supplies /debug/cache (the posting-block cache counters).
	// Safe to leave nil — and a nil *blockcache.Cache renders as zeros.
	Cache *blockcache.Cache
	// Load supplies /debug/load and the kadop_load_*/kadop_hot_term
	// families of /metrics. Defaults to Node.Load().
	Load *metrics.Load
	// Registry supplies the labeled counter/gauge families of /metrics.
	// Defaults to Node.Registry().
	Registry *metrics.Registry
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiling endpoints on a public address are a foot-gun, so the
	// binaries gate them behind an explicit flag (kadop-bench, whose
	// endpoint exists for profiling, turns it on).
	Pprof bool
	// Flight supplies /debug/flight (the flight-recorder ring dump).
	// Defaults to Node.Flight().
	Flight *flight.Recorder
	// SLO supplies /debug/slo (objective statuses and burn rates).
	SLO *slo.Engine
	// Stats supplies /debug/stats (the statistics registry: per-term
	// cardinalities, join selectivities, estimation-error histogram)
	// and the kadop_stats_* families of /metrics.
	Stats *stats.Registry
	// BuildInfo adds kadop_build_info and the process start-time gauge
	// to /metrics. The binaries turn it on; deterministic tests leave it
	// off so golden expositions stay stable.
	BuildInfo bool
}

// load resolves the effective load source.
func (o Options) load() *metrics.Load {
	if o.Load != nil {
		return o.Load
	}
	if o.Node != nil {
		return o.Node.Load()
	}
	return nil
}

// registry resolves the effective registry source.
func (o Options) registry() *metrics.Registry {
	if o.Registry != nil {
		return o.Registry
	}
	if o.Node != nil {
		return o.Node.Registry()
	}
	return nil
}

// flightRecorder resolves the effective flight-ring source.
func (o Options) flightRecorder() *flight.Recorder {
	if o.Flight != nil {
		return o.Flight
	}
	if o.Node != nil {
		return o.Node.Flight()
	}
	return nil
}

// Handler builds the admin mux. Paths:
//
//	/metrics        Prometheus text exposition
//	/debug/metrics  JSON metrics dump (percentiles included)
//	/debug/load     per-peer load ledger and hot-term sketch (JSON)
//	/debug/traces   recent traces, JSON; ?format=text for trace trees
//	/debug/peer     identity, routing table and store statistics
//	/debug/flight   flight-recorder ring dump (JSON; ?kind=rpc filters)
//	/debug/slo      SLO statuses, burn rates and the health verdict
//	/debug/stats    statistics registry: cardinalities, selectivities (JSON)
//	/debug/pprof/   the standard pprof handlers (only with Options.Pprof)
func Handler(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "kadop debug endpoint\n\n"+
			"/metrics         Prometheus text exposition\n"+
			"/debug/metrics   traffic classes, events, latency percentiles (JSON)\n"+
			"/debug/load      per-peer load ledger, hot-term sketch (JSON)\n"+
			"/debug/traces    recent query traces (JSON; ?format=text&n=8)\n"+
			"/debug/peer      identity, routing table, store stats (JSON)\n"+
			"/debug/cache     posting-block cache counters (JSON)\n"+
			"/debug/flight    flight-recorder dump (JSON; ?kind=rpc filters)\n"+
			"/debug/slo       SLO statuses and burn-rate verdict (JSON)\n"+
			"/debug/stats     statistics registry: cardinalities, selectivities (JSON)\n")
		if o.Pprof {
			fmt.Fprint(w, "/debug/pprof/    runtime profiles\n")
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		metrics.WriteProm(w, metrics.PromOptions{
			Collector: o.Collector,
			Load:      o.load(),
			Registry:  o.registry(),
			BuildInfo: o.BuildInfo,
		})
		if o.Stats != nil {
			o.Stats.WriteProm(w)
		}
	})
	mux.HandleFunc("/debug/stats", func(w http.ResponseWriter, r *http.Request) {
		if o.Stats == nil {
			http.Error(w, "no statistics registry installed", http.StatusNotFound)
			return
		}
		writeJSON(w, o.Stats.Snapshot())
	})
	mux.HandleFunc("/debug/load", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.load().Export())
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.Collector.Export())
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		n := 16
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		recent := o.Tracer.Recent(n)
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, t := range recent {
				fmt.Fprintf(w, "trace %x %q\n%s\n", t.ID(), t.Name(), t.Tree())
			}
			return
		}
		out := make([]trace.TraceRecord, 0, len(recent))
		for _, t := range recent {
			out = append(out, t.Export())
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/debug/peer", func(w http.ResponseWriter, r *http.Request) {
		info := map[string]any{}
		if o.Node != nil {
			info["addr"] = o.Node.Self().Addr
			info["id"] = fmt.Sprintf("%x", o.Node.Self().ID)
			info["routing_table_size"] = o.Node.Table().Size()
			if terms, err := o.Node.Store().Terms(); err == nil {
				info["store_terms"] = len(terms)
			}
		}
		if o.Docs != nil {
			info["documents"] = o.Docs()
		}
		writeJSON(w, info)
	})
	mux.HandleFunc("/debug/cache", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.Cache.Stats())
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		rec := o.flightRecorder()
		if rec == nil {
			http.Error(w, "no flight recorder installed", http.StatusNotFound)
			return
		}
		dump := rec.TakeDump("request")
		if kind := r.URL.Query().Get("kind"); kind != "" {
			kept := dump.Events[:0:0]
			for _, e := range dump.Events {
				if e.Kind == kind {
					kept = append(kept, e)
				}
			}
			dump.Events = kept
		}
		writeJSON(w, dump)
	})
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
		if o.SLO == nil {
			http.Error(w, "no slo engine installed", http.StatusNotFound)
			return
		}
		statuses := o.SLO.Status()
		writeJSON(w, map[string]any{
			"verdict":    slo.Verdict(statuses),
			"objectives": statuses,
		})
	})
	if o.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Serve starts the endpoint on addr (e.g. "127.0.0.1:6060") and returns
// the bound address and a shutdown function. The listener accepts
// immediately; serving runs in the background.
func Serve(addr string, o Options) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(o)}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
