package admin

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"kadop/internal/metrics"
	"kadop/internal/obs/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedSources builds deterministic collector/load/registry/stats
// contents: fixed counts, durations that land mid-bucket, and a term
// that needs label escaping.
func fixedSources() (*metrics.Collector, *metrics.Load, *metrics.Registry, *stats.Registry) {
	col := metrics.NewCollector()
	col.Count(metrics.Postings, 1000)
	col.Count(metrics.Postings, 500)
	col.Count(metrics.Routing, 64)
	col.CountEvent(metrics.EventRetry)
	col.AddEvent(metrics.EventCacheBytesSaved, 4096)
	col.Observe(metrics.OpLookup, 3*time.Microsecond)
	col.Observe(metrics.OpLookup, 100*time.Microsecond)
	col.Observe(metrics.OpLookup, 2*time.Millisecond)
	col.Observe(metrics.OpQueryTotal, 10*time.Millisecond)

	load := metrics.NewLoad(8)
	load.Append("l:author", 10)
	load.Serve("overflow:1:l:author", 20)
	load.Serve(`l:we"ird\term`+"\n", 2)
	load.ServeBlock()

	reg := metrics.NewRegistry()
	reg.Counter("kadop_rpc_client_total", "Outgoing RPCs by operation and remote peer.",
		metrics.Label{Key: "op", Value: metrics.OpRPCGet},
		metrics.Label{Key: "peer", Value: "sim://2"}).Add(7)
	reg.Gauge("kadop_peer_up", "Whether the peer is serving.").Set(1)

	st := stats.NewRegistry()
	st.ObservePublish("l:author", 2, 6)
	st.ObservePublish("l:article", 1, 1)
	st.ObserveQuery(100, 25, []stats.Edge{{Parent: "l:article", Axis: "//", Child: "l:author"}})
	st.ObserveError(0.15)
	return col, load, reg, st
}

func TestPromExpositionGolden(t *testing.T) {
	col, load, reg, st := fixedSources()
	var b strings.Builder
	if err := metrics.WriteProm(&b, metrics.PromOptions{Collector: col, Load: load, Registry: reg}); err != nil {
		t.Fatal(err)
	}
	// /metrics appends the statistics families after the core ones, so
	// the golden file covers the full scrape a deployment sees.
	if err := st.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("exposition output diverged from %s (re-run with -update if intended)\ngot:\n%s", golden, got)
	}
	// Spot-check the properties the golden file encodes, so a future
	// -update cannot silently bake in a regression.
	for _, want := range []string{
		`kadop_traffic_bytes_total{class="postings"} 1500`,
		`kadop_events_total{event="cache-bytes-saved"} 4096`,
		`kadop_op_latency_seconds_bucket{op="lookup",le="4e-06"} 1`,
		`kadop_op_latency_seconds_bucket{op="lookup",le="+Inf"} 3`,
		`kadop_op_latency_seconds_count{op="lookup"} 3`,
		`kadop_load_bytes_served_total 396`,
		`kadop_hot_term_bytes{term="l:author"} 540`,
		`kadop_hot_term_bytes{term="l:we\"ird\\term\n"} 36`,
		`kadop_rpc_client_total{op="rpc:get",peer="sim://2"} 7`,
		`kadop_peer_up 1`,
		`kadop_stats_terms 2`,
		`kadop_stats_term_docs{term="l:author"} 2`,
		`kadop_stats_term_postings{term="l:author"} 6`,
		`kadop_stats_queries_observed_total 1`,
		`kadop_stats_est_error_bucket{le="0.2"} 1`,
		`kadop_stats_est_error_count 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if !strings.Contains(got, "# TYPE kadop_op_latency_seconds histogram") {
		t.Error("missing histogram TYPE line")
	}
}

func TestLoadEndpoint(t *testing.T) {
	_, load, _, _ := fixedSources()
	addr, stop, err := Serve("127.0.0.1:0", Options{Load: load})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	var ex metrics.LoadExport
	if err := json.Unmarshal(get(t, "http://"+addr+"/debug/load"), &ex); err != nil {
		t.Fatal(err)
	}
	if ex.BytesServed != 22*metrics.PostingWireBytes || ex.BlocksServed != 1 {
		t.Errorf("load export = %+v", ex)
	}
	if len(ex.HotTerms) == 0 || ex.HotTerms[0].Term != "l:author" {
		t.Errorf("hot terms = %+v", ex.HotTerms)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, _, _, st := fixedSources()
	addr, stop, err := Serve("127.0.0.1:0", Options{Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	var ex stats.Export
	if err := json.Unmarshal(get(t, "http://"+addr+"/debug/stats"), &ex); err != nil {
		t.Fatal(err)
	}
	if ex.Terms["l:author"].Docs != 2 || ex.Queries != 1 {
		t.Errorf("stats export = %+v", ex)
	}
	body := string(get(t, "http://"+addr+"/metrics"))
	if !strings.Contains(body, "kadop_stats_terms 2") {
		t.Errorf("/metrics missing stats families:\n%s", body)
	}
}

// TestScrapeWhileRecordingRace hammers every recording path while
// scraping /metrics; run under -race it proves scrapes never tear.
func TestScrapeWhileRecordingRace(t *testing.T) {
	col := metrics.NewCollector()
	load := metrics.NewLoad(16)
	reg := metrics.NewRegistry()
	addr, stop, err := Serve("127.0.0.1:0", Options{Collector: col, Load: load, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			col.Count(metrics.Postings, 100)
			col.Observe(metrics.OpLookup, time.Duration(i%1000)*time.Microsecond)
			col.CountEvent(metrics.EventRetry)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			load.Serve("l:author", 5)
			load.Append("w:x", 1)
			load.ServeBlock()
			_ = i
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			reg.Counter("kadop_rpc_client_total", "h",
				metrics.Label{Key: "op", Value: metrics.OpRPCGet},
				metrics.Label{Key: "peer", Value: "p"}).Add(1)
		}
	}()

	for i := 0; i < 20; i++ {
		body := string(get(t, "http://"+addr+"/metrics"))
		if !strings.Contains(body, "kadop_load_bytes_served_total") {
			t.Fatalf("scrape %d missing load family:\n%s", i, body)
		}
	}
	close(done)
	wg.Wait()
}
