package admin

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kadop/internal/dht"
	"kadop/internal/metrics"
	"kadop/internal/store"
	"kadop/internal/trace"
)

func testServer(t *testing.T) (*httptest.Server, *metrics.Collector, *trace.Tracer) {
	t.Helper()
	net := dht.NewNetwork()
	nd, err := dht.NewNode(net.NewEndpoint(), store.NewMem(), dht.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nd.Close() })
	tr := trace.New(8)
	srv := httptest.NewServer(Handler(Options{
		Collector: net.Collector,
		Tracer:    tr,
		Node:      nd,
		Docs:      func() int { return 3 },
		Pprof:     true,
	}))
	t.Cleanup(srv.Close)
	return srv, net.Collector, tr
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMetricsEndpoint(t *testing.T) {
	srv, col, _ := testServer(t)
	col.Count(metrics.Postings, 100)
	col.CountEvent(metrics.EventRetry)
	for i := 0; i < 5; i++ {
		col.Observe(metrics.OpLookup, time.Millisecond)
		col.Observe(metrics.OpPostingsTransfer, 2*time.Millisecond)
		col.Observe(metrics.OpTwigJoin, 500*time.Microsecond)
	}
	var ex metrics.Export
	if err := json.Unmarshal(get(t, srv.URL+"/debug/metrics"), &ex); err != nil {
		t.Fatal(err)
	}
	if ex.Classes["postings"].Bytes != 100 {
		t.Errorf("classes = %+v", ex.Classes)
	}
	if ex.Events["retries"] != 1 {
		t.Errorf("events = %+v", ex.Events)
	}
	for _, op := range []string{metrics.OpLookup, metrics.OpPostingsTransfer, metrics.OpTwigJoin} {
		st, ok := ex.Ops[op]
		if !ok || st.Count != 5 || st.P50 == 0 || st.P95 == 0 || st.P99 == 0 {
			t.Errorf("op %s = %+v", op, st)
		}
	}
}

func TestTracesEndpoint(t *testing.T) {
	srv, _, tr := testServer(t)
	ctx, root := tr.StartTrace(context.Background(), "query")
	_, sp := trace.StartSpan(ctx, "phase:fetch")
	sp.Finish()
	root.Finish()

	var recs []trace.TraceRecord
	if err := json.Unmarshal(get(t, srv.URL+"/debug/traces"), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != "query" || len(recs[0].Spans) != 2 {
		t.Fatalf("traces = %+v", recs)
	}
	text := string(get(t, srv.URL+"/debug/traces?format=text"))
	if !strings.Contains(text, "query") || !strings.Contains(text, "phase:fetch") {
		t.Errorf("text traces:\n%s", text)
	}
}

func TestPeerEndpoint(t *testing.T) {
	srv, _, _ := testServer(t)
	var info map[string]any
	if err := json.Unmarshal(get(t, srv.URL+"/debug/peer"), &info); err != nil {
		t.Fatal(err)
	}
	if info["addr"] == "" || info["documents"] != float64(3) {
		t.Errorf("peer info = %+v", info)
	}
	if _, ok := info["routing_table_size"]; !ok {
		t.Errorf("peer info missing table size: %+v", info)
	}
}

func TestNilOptionsSafe(t *testing.T) {
	srv := httptest.NewServer(Handler(Options{}))
	defer srv.Close()
	for _, p := range []string{"/", "/metrics", "/debug/metrics", "/debug/load", "/debug/traces", "/debug/peer"} {
		get(t, srv.URL+p)
	}
}

func TestPprofWired(t *testing.T) {
	srv, _, _ := testServer(t)
	b := get(t, srv.URL+"/debug/pprof/")
	if !strings.Contains(string(b), "goroutine") {
		t.Error("pprof index missing profiles")
	}
}

func TestPprofGatedOffByDefault(t *testing.T) {
	srv := httptest.NewServer(Handler(Options{}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof should be absent without Options.Pprof, got %s", resp.Status)
	}
}

func TestServe(t *testing.T) {
	addr, stop, err := Serve("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %s", resp.Status)
	}
}
