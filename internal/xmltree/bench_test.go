package xmltree

import (
	"strings"
	"testing"
)

func benchDoc() string {
	var sb strings.Builder
	sb.WriteString("<dblp>")
	for i := 0; i < 500; i++ {
		sb.WriteString(`<article><author>Alice Smith</author><title>a study of things and stuff</title><year>2006</year></article>`)
	}
	sb.WriteString("</dblp>")
	return sb.String()
}

func BenchmarkParse(b *testing.B) {
	raw := []byte(benchDoc())
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseBytes(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtract(b *testing.B) {
	d, err := ParseBytes([]byte(benchDoc()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tps := Extract(d, 1, 1, ExtractOptions{})
		if len(tps) == 0 {
			b.Fatal("no postings")
		}
	}
}

func BenchmarkSerialize(b *testing.B) {
	d, err := ParseBytes([]byte(benchDoc()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := Serialize(d); len(s) == 0 {
			b.Fatal("empty")
		}
	}
}
