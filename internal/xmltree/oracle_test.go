package xmltree

import (
	"testing"

	"kadop/internal/sid"
)

func TestMatchPatternHandChecked(t *testing.T) {
	doc, err := ParseBytes([]byte(
		`<dblp><article><author>Jeffrey Ullman</author><title>Databases</title></article>` +
			`<article><author>Serge Abiteboul</author></article></dblp>`))
	if err != nil {
		t.Fatal(err)
	}

	// //article//author — two embeddings.
	p := &PatternNode{Term: LabelTerm("article"), Children: []*PatternNode{
		{Term: LabelTerm("author"), Axis: PatternDescendant},
	}}
	got := MatchPattern(doc, p)
	if len(got) != 2 {
		t.Fatalf("article//author: %d tuples, want 2", len(got))
	}
	for _, tuple := range got {
		if len(tuple) != 2 || !tuple[0].Contains(tuple[1]) {
			t.Fatalf("bad tuple %v", tuple)
		}
	}

	// //article//author[. contains "ullman"] — one embedding, the word
	// binding to the author element itself (descendant-or-self).
	p.Children[0].Children = []*PatternNode{
		{Term: WordTerm("ullman"), Axis: PatternDescendantOrSelf},
	}
	got = MatchPattern(doc, p)
	if len(got) != 1 {
		t.Fatalf("with word predicate: %d tuples, want 1", len(got))
	}
	if got[0][1] != got[0][2] {
		t.Fatalf("word should bind to the author element itself: %v", got[0])
	}

	// Child vs descendant: //dblp/author must be empty (author is a
	// grandchild), //dblp//author must not.
	child := &PatternNode{Term: LabelTerm("dblp"), Children: []*PatternNode{
		{Term: LabelTerm("author"), Axis: PatternChild},
	}}
	if got := MatchPattern(doc, child); len(got) != 0 {
		t.Fatalf("dblp/author: %d tuples, want 0", len(got))
	}
	child.Children[0].Axis = PatternDescendant
	if got := MatchPattern(doc, child); len(got) != 2 {
		t.Fatalf("dblp//author: %d tuples, want 2", len(got))
	}

	// Wildcard with two branches: //*[//author][//title] — only the
	// first article has both, binding * to article and dblp.
	wild := &PatternNode{Term: LabelTerm(PatternWildcard), Children: []*PatternNode{
		{Term: LabelTerm("author"), Axis: PatternDescendant},
		{Term: LabelTerm("title"), Axis: PatternDescendant},
	}}
	got = MatchPattern(doc, wild)
	// dblp binds with 2 authors x 1 title, article binds with 1 x 1.
	if len(got) != 3 {
		t.Fatalf("wildcard branches: %d tuples, want 3", len(got))
	}
	var zero sid.SID
	for _, tuple := range got {
		for _, s := range tuple {
			if s == zero {
				t.Fatalf("unbound SID in %v", tuple)
			}
		}
	}
}
