package xmltree

import "kadop/internal/sid"

// The oracle: a naive tree-walk evaluator for twig patterns, used by the
// property tests as independent ground truth for the distributed query
// machinery. It deliberately lives here — with its own minimal pattern
// representation — rather than reusing package pattern's evaluator:
// pattern imports xmltree, and an oracle sharing pattern's code could
// share its bugs. The algorithm is also intentionally different: a
// bottom-up per-binding tuple join instead of pattern's pre-order
// backtracking.

// PatternAxis is the edge kind between a pattern node and its parent.
type PatternAxis uint8

const (
	// PatternChild requires a direct parent/child relationship.
	PatternChild PatternAxis = iota
	// PatternDescendant requires strict containment.
	PatternDescendant
	// PatternDescendantOrSelf additionally accepts the element itself
	// (how word predicates attach to their host element).
	PatternDescendantOrSelf
)

// PatternWildcard matches any element label.
const PatternWildcard = "*"

// PatternNode is one node of an oracle twig pattern. A Label term with
// text PatternWildcard matches every element; a Word term matches
// elements directly containing that word token. The root node's Axis is
// ignored: like the paper's tree patterns, the pattern root may bind to
// any element of the document.
type PatternNode struct {
	Term     Term
	Axis     PatternAxis
	Children []*PatternNode
}

// MatchPattern enumerates every embedding of the pattern in the
// document. Each result tuple holds the bound element SIDs in the
// pattern's pre-order.
func MatchPattern(d *Document, root *PatternNode) [][]sid.SID {
	if d == nil || d.Root == nil || root == nil {
		return nil
	}
	var all []*Node
	d.Walk(func(n *Node) { all = append(all, n) })

	var out [][]sid.SID
	for _, dn := range all {
		if !oracleTermMatches(root, dn) {
			continue
		}
		out = append(out, oracleBind(root, dn, all)...)
	}
	return out
}

// oracleBind returns all tuples for the pattern subtree rooted at pn
// with pn bound to dn (dn's SID leads each tuple).
func oracleBind(pn *PatternNode, dn *Node, all []*Node) [][]sid.SID {
	// Tuples of the children, joined left to right by cross product.
	acc := [][]sid.SID{{}}
	for _, c := range pn.Children {
		var cTuples [][]sid.SID
		for _, dn2 := range all {
			if !oracleAxisHolds(c.Axis, dn.SID, dn2.SID) || !oracleTermMatches(c, dn2) {
				continue
			}
			cTuples = append(cTuples, oracleBind(c, dn2, all)...)
		}
		if len(cTuples) == 0 {
			return nil
		}
		var next [][]sid.SID
		for _, left := range acc {
			for _, right := range cTuples {
				tuple := make([]sid.SID, 0, len(left)+len(right))
				tuple = append(tuple, left...)
				tuple = append(tuple, right...)
				next = append(next, tuple)
			}
		}
		acc = next
	}
	out := make([][]sid.SID, len(acc))
	for i, tail := range acc {
		out[i] = append([]sid.SID{dn.SID}, tail...)
	}
	return out
}

func oracleTermMatches(pn *PatternNode, dn *Node) bool {
	if pn.Term.Kind == Word {
		for _, w := range dn.Words {
			if w == pn.Term.Text {
				return true
			}
		}
		return false
	}
	return pn.Term.Text == PatternWildcard || dn.Label == pn.Term.Text
}

func oracleAxisHolds(axis PatternAxis, a, d sid.SID) bool {
	switch axis {
	case PatternChild:
		return a.ParentOf(d)
	case PatternDescendant:
		return a.Contains(d)
	case PatternDescendantOrSelf:
		return a == d || a.Contains(d)
	}
	return false
}
