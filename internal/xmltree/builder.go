package xmltree

import (
	"fmt"
	"strings"

	"kadop/internal/sid"
)

// Builder constructs documents programmatically, assigning structural
// identifiers as elements open and close. It is used by the synthetic
// workload generators, which would otherwise pay XML serialisation and
// re-parsing for every generated document.
type Builder struct {
	doc   *Document
	stack []*Node
	pos   uint32
	err   error
}

// NewBuilder returns an empty document builder.
func NewBuilder() *Builder {
	return &Builder{doc: &Document{}, pos: 1}
}

// Open starts a new element with the given label.
func (b *Builder) Open(label string) *Builder {
	if b.err != nil {
		return b
	}
	n := &Node{Label: label, SID: sid.SID{Start: b.pos, Level: uint16(len(b.stack))}}
	b.pos++
	if len(b.stack) == 0 {
		if b.doc.Root != nil {
			b.err = fmt.Errorf("xmltree: builder: multiple root elements")
			return b
		}
		b.doc.Root = n
	} else {
		parent := b.stack[len(b.stack)-1]
		parent.Children = append(parent.Children, n)
	}
	b.stack = append(b.stack, n)
	return b
}

// Text appends word tokens of text to the currently open element.
func (b *Builder) Text(s string) *Builder {
	if b.err != nil {
		return b
	}
	if len(b.stack) == 0 {
		b.err = fmt.Errorf("xmltree: builder: text outside any element")
		return b
	}
	cur := b.stack[len(b.stack)-1]
	cur.Words = append(cur.Words, Tokenize(s)...)
	return b
}

// Close ends the innermost open element.
func (b *Builder) Close() *Builder {
	if b.err != nil {
		return b
	}
	if len(b.stack) == 0 {
		b.err = fmt.Errorf("xmltree: builder: close without open element")
		return b
	}
	n := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	n.SID.End = b.pos
	b.pos++
	return b
}

// Leaf opens an element, adds text, and closes it.
func (b *Builder) Leaf(label, text string) *Builder {
	return b.Open(label).Text(text).Close()
}

// Include adds an intensional include node referencing uri.
func (b *Builder) Include(uri string) *Builder {
	b.Open(IncludeLabel)
	if b.err == nil {
		b.stack[len(b.stack)-1].Include = uri
	}
	return b.Close()
}

// Document finishes the build and returns the document.
func (b *Builder) Document() (*Document, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.stack) != 0 {
		return nil, fmt.Errorf("xmltree: builder: %d unclosed elements", len(b.stack))
	}
	if b.doc.Root == nil {
		return nil, fmt.Errorf("xmltree: builder: empty document")
	}
	b.doc.Tags = b.pos - 1
	return b.doc, nil
}

// Serialize renders the document as XML text. Include nodes are
// rendered as an external entity declaration in an internal DTD subset
// plus entity references, so Serialize/Parse round-trip intensional
// structure.
func Serialize(d *Document) string {
	var sb strings.Builder
	sb.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")

	// Collect includes for the DTD.
	var uris []string
	d.Walk(func(n *Node) {
		if n.Include != "" {
			uris = append(uris, n.Include)
		}
	})
	names := map[string]string{}
	if len(uris) > 0 {
		fmt.Fprintf(&sb, "<!DOCTYPE %s [\n", xmlEscapeName(d.Root.Label))
		for i, uri := range uris {
			if _, dup := names[uri]; dup {
				continue
			}
			name := fmt.Sprintf("inc%d", i)
			names[uri] = name
			fmt.Fprintf(&sb, "<!ENTITY %s SYSTEM %q>\n", name, uri)
		}
		sb.WriteString("]>\n")
	}

	var rec func(n *Node)
	rec = func(n *Node) {
		if n.Include != "" {
			fmt.Fprintf(&sb, "&%s;", names[n.Include])
			return
		}
		fmt.Fprintf(&sb, "<%s>", xmlEscapeName(n.Label))
		if len(n.Words) > 0 {
			sb.WriteString(escapeText(strings.Join(n.Words, " ")))
		}
		for _, c := range n.Children {
			rec(c)
		}
		fmt.Fprintf(&sb, "</%s>", xmlEscapeName(n.Label))
	}
	rec(d.Root)
	sb.WriteString("\n")
	return sb.String()
}

func xmlEscapeName(s string) string {
	// Labels produced by the generators are already valid XML names;
	// reject-by-replacement keeps Serialize total for arbitrary trees.
	if s == "" {
		return "empty"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.', r == ':':
			return r
		}
		return '_'
	}, s)
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
