package xmltree

import (
	"strings"
	"testing"

	"kadop/internal/sid"
)

const sample = `<?xml version="1.0"?>
<article key="cite1">
  <author name="Jones">Dan Jones</author>
  <title>More on XML</title>
  <abstract>XML data management in P2P networks</abstract>
</article>`

func parse(t *testing.T, s string) *Document {
	t.Helper()
	d, err := ParseBytes([]byte(s))
	if err != nil {
		t.Fatalf("ParseBytes: %v", err)
	}
	return d
}

func find(d *Document, label string) []*Node {
	var out []*Node
	d.Walk(func(n *Node) {
		if n.Label == label {
			out = append(out, n)
		}
	})
	return out
}

func TestParseAssignsSIDs(t *testing.T) {
	d := parse(t, sample)
	if d.Root.Label != "article" {
		t.Fatalf("root = %q", d.Root.Label)
	}
	if d.Root.SID.Start != 1 {
		t.Errorf("root start = %d", d.Root.SID.Start)
	}
	if d.Root.SID.End != d.Tags {
		t.Errorf("root end = %d, tags = %d", d.Root.SID.End, d.Tags)
	}
	// Every element's sid is valid and strictly inside its parent's.
	var check func(n *Node)
	check = func(n *Node) {
		if !n.SID.Valid() {
			t.Errorf("invalid sid on %s: %v", n.Label, n.SID)
		}
		for _, c := range n.Children {
			if !n.SID.Contains(c.SID) {
				t.Errorf("%s %v does not contain child %s %v", n.Label, n.SID, c.Label, c.SID)
			}
			if c.SID.Level != n.SID.Level+1 {
				t.Errorf("child level %d, parent level %d", c.SID.Level, n.SID.Level)
			}
			check(c)
		}
	}
	check(d.Root)
}

func TestParseAttributesBecomeElements(t *testing.T) {
	d := parse(t, sample)
	keys := find(d, "key")
	if len(keys) != 1 {
		t.Fatalf("attribute 'key' elements: %d", len(keys))
	}
	if got := strings.Join(keys[0].Words, " "); got != "cite1" {
		t.Errorf("key attr words = %q", got)
	}
	names := find(d, "name")
	if len(names) != 1 || names[0].Words[0] != "jones" {
		t.Errorf("name attr = %v", names)
	}
}

func TestParseWords(t *testing.T) {
	d := parse(t, sample)
	titles := find(d, "title")
	if len(titles) != 1 {
		t.Fatal("no title")
	}
	want := []string{"more", "on", "xml"}
	if len(titles[0].Words) != len(want) {
		t.Fatalf("title words = %v", titles[0].Words)
	}
	for i, w := range want {
		if titles[0].Words[i] != w {
			t.Errorf("word %d = %q, want %q", i, titles[0].Words[i], w)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"just text",
		"<a><b></a></b>",
		"<a></a><b></b>",
	}
	for _, s := range bad {
		if _, err := ParseBytes([]byte(s)); err == nil {
			t.Errorf("ParseBytes(%q) should fail", s)
		}
	}
}

func TestParseIncludes(t *testing.T) {
	src := `<?xml version="1.0"?>
<!DOCTYPE document [
<!ENTITY thisabstract SYSTEM "2445abstract.xml">
<!ENTITY dj SYSTEM "DanJones.xml">
]>
<article>
  <author name="Jones">&dj;</author>
  <abstract>&thisabstract;</abstract>
</article>`
	d := parse(t, src)
	if !d.HasIncludes() {
		t.Fatal("includes not detected")
	}
	incs := find(d, IncludeLabel)
	if len(incs) != 2 {
		t.Fatalf("include nodes: %d", len(incs))
	}
	uris := map[string]bool{}
	for _, n := range incs {
		uris[n.Include] = true
	}
	if !uris["2445abstract.xml"] || !uris["DanJones.xml"] {
		t.Errorf("include uris = %v", uris)
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"More on XML", []string{"more", "on", "xml"}},
		{"P2P-based systems!", []string{"p2p", "based", "systems"}},
		{"", nil},
		{"   ", nil},
		{"snake_case stays", []string{"snake_case", "stays"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestExtract(t *testing.T) {
	d := parse(t, sample)
	tps := Extract(d, 7, 9, ExtractOptions{})
	byKey := map[string]int{}
	for _, tp := range tps {
		byKey[tp.Term.Key()]++
		if tp.Posting.Peer != 7 || tp.Posting.Doc != 9 {
			t.Fatalf("posting ids: %v", tp.Posting)
		}
	}
	if byKey["l:article"] != 1 || byKey["l:author"] != 1 || byKey["l:title"] != 1 {
		t.Errorf("label postings: %v", byKey)
	}
	// "xml" appears under title and abstract.
	if byKey["w:xml"] != 2 {
		t.Errorf("w:xml postings = %d", byKey["w:xml"])
	}
}

func TestExtractStopWordsAndSkip(t *testing.T) {
	d := parse(t, sample)
	tps := Extract(d, 1, 1, ExtractOptions{StopWords: DefaultStopWords()})
	for _, tp := range tps {
		if tp.Term.Kind == Word && tp.Term.Text == "on" {
			t.Error("stop word 'on' was indexed")
		}
	}
	tps = Extract(d, 1, 1, ExtractOptions{SkipWords: true})
	for _, tp := range tps {
		if tp.Term.Kind == Word {
			t.Error("SkipWords did not skip word terms")
		}
	}
}

func TestExtractDedupsWordsPerElement(t *testing.T) {
	d := parse(t, `<a>xml xml xml</a>`)
	tps := Extract(d, 1, 1, ExtractOptions{})
	count := 0
	for _, tp := range tps {
		if tp.Term.Key() == "w:xml" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("w:xml postings = %d, want 1 (deduped per element)", count)
	}
}

func TestTermKeys(t *testing.T) {
	if LabelTerm("author").Key() != "l:author" {
		t.Error("label key")
	}
	if WordTerm("Ullman").Key() != "w:ullman" {
		t.Error("word key should lower-case")
	}
	if LabelTerm("x").String() == "" {
		t.Error("String empty")
	}
}

func TestBuilderMatchesParser(t *testing.T) {
	b := NewBuilder()
	b.Open("article")
	b.Open("author").Text("Dan Jones").Close()
	b.Leaf("title", "More on XML")
	b.Close()
	d, err := b.Document()
	if err != nil {
		t.Fatal(err)
	}
	parsed := parse(t, `<article><author>Dan Jones</author><title>More on XML</title></article>`)
	var a, p []sid.SID
	d.Walk(func(n *Node) { a = append(a, n.SID) })
	parsed.Walk(func(n *Node) { p = append(p, n.SID) })
	if len(a) != len(p) {
		t.Fatalf("element counts differ: %d vs %d", len(a), len(p))
	}
	for i := range a {
		if a[i] != p[i] {
			t.Errorf("sid %d: builder %v, parser %v", i, a[i], p[i])
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder().Document(); err == nil {
		t.Error("empty build should fail")
	}
	if _, err := NewBuilder().Open("a").Document(); err == nil {
		t.Error("unclosed build should fail")
	}
	b := NewBuilder()
	b.Close()
	if _, err := b.Document(); err == nil {
		t.Error("close without open should fail")
	}
	b = NewBuilder()
	b.Text("dangling")
	if _, err := b.Document(); err == nil {
		t.Error("text outside element should fail")
	}
	b = NewBuilder()
	b.Open("a").Close()
	b.Open("b").Close()
	if _, err := b.Document(); err == nil {
		t.Error("second root should fail")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	b := NewBuilder()
	b.Open("article")
	b.Open("author").Text("Dan Jones").Include("DanJones.xml").Close()
	b.Leaf("title", "More on <XML> & more")
	b.Include("paper.xml")
	b.Close()
	d, err := b.Document()
	if err != nil {
		t.Fatal(err)
	}
	text := Serialize(d)
	rt, err := ParseBytes([]byte(text))
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, text)
	}
	if !rt.HasIncludes() {
		t.Fatal("includes lost in round trip")
	}
	incs := find(rt, IncludeLabel)
	if len(incs) != 2 {
		t.Fatalf("round-trip includes: %d", len(incs))
	}
	if rt.Root.Label != "article" {
		t.Fatal("root label lost")
	}
	titles := find(rt, "title")
	joined := strings.Join(titles[0].Words, " ")
	if !strings.Contains(joined, "xml") {
		t.Errorf("title words lost: %q", joined)
	}
}

func TestElementsCount(t *testing.T) {
	d := parse(t, `<a><b/><c><d/></c></a>`)
	if n := d.Elements(); n != 4 {
		t.Errorf("Elements = %d", n)
	}
}

func TestParseDeepNesting(t *testing.T) {
	depth := 2000
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		sb.WriteString("<d>")
	}
	sb.WriteString("leaf")
	for i := 0; i < depth; i++ {
		sb.WriteString("</d>")
	}
	d, err := ParseBytes([]byte(sb.String()))
	if err != nil {
		t.Fatalf("deep document: %v", err)
	}
	if n := d.Elements(); n != depth {
		t.Fatalf("elements = %d", n)
	}
	// Levels must track depth, and sids nest correctly all the way down.
	deepest := d.Root
	for len(deepest.Children) > 0 {
		deepest = deepest.Children[0]
	}
	if int(deepest.SID.Level) != depth-1 {
		t.Fatalf("deepest level = %d", deepest.SID.Level)
	}
}

func TestParseWideDocument(t *testing.T) {
	const width = 5000
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < width; i++ {
		sb.WriteString("<c/>")
	}
	sb.WriteString("</r>")
	d, err := ParseBytes([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n := d.Elements(); n != width+1 {
		t.Fatalf("elements = %d", n)
	}
	if d.Root.SID.End != d.Tags {
		t.Fatalf("root end = %d, tags = %d", d.Root.SID.End, d.Tags)
	}
}

func TestParseUnicodeAndEntities(t *testing.T) {
	d := parse(t, `<a title="r&#233;sum&#233;">caf&#233; &amp; th&#233; 北京</a>`)
	var words []string
	d.Walk(func(n *Node) { words = append(words, n.Words...) })
	joined := strings.Join(words, " ")
	for _, w := range []string{"café", "thé", "北京", "résumé"} {
		if !strings.Contains(joined, w) {
			t.Errorf("missing unicode word %q in %q", w, joined)
		}
	}
}

func TestSIDNumberingIsDense(t *testing.T) {
	// Every tag position in [1, Tags] is used exactly once across all
	// opening/closing tags.
	d := parse(t, `<a><b><c/></b><d>x</d><e><f/><g/></e></a>`)
	used := map[uint32]int{}
	d.Walk(func(n *Node) {
		used[n.SID.Start]++
		used[n.SID.End]++
	})
	for pos := uint32(1); pos <= d.Tags; pos++ {
		if used[pos] != 1 {
			t.Fatalf("tag position %d used %d times", pos, used[pos])
		}
	}
}
