// Package xmltree parses XML documents into labeled trees, assigns
// structural identifiers, and extracts the term postings that KadoP
// indexes (Section 2 of the paper).
//
// Each element receives a sid (start, end, level) by numbering the
// opening and closing tags in document order. Attributes are treated as
// child elements (the paper does not distinguish elements from
// attributes), and each word token of text is attached to its enclosing
// element. The package also recognises the intensional-data constructs
// of Section 6: external entity includes declared in the document's
// DTD and expanded with &name;, which are represented as include nodes
// carrying the referenced URI instead of content.
package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"regexp"
	"strings"

	"kadop/internal/sid"
)

// IncludeLabel is the reserved label of nodes that stand for intensional
// includes (external entities); their Include field holds the URI.
const IncludeLabel = "kadop:include"

// Node is one element of a parsed document tree.
type Node struct {
	Label    string
	SID      sid.SID
	Words    []string // word tokens of text directly under this element
	Children []*Node
	Include  string // when Label == IncludeLabel: the included URI
}

// Document is a parsed XML document with assigned structural ids.
type Document struct {
	Root *Node
	Tags uint32 // total number of tag positions assigned
}

// Walk calls fn for every node of the document in document order.
func (d *Document) Walk(fn func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		fn(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	if d.Root != nil {
		rec(d.Root)
	}
}

// Elements returns the number of element nodes in the document.
func (d *Document) Elements() int {
	n := 0
	d.Walk(func(*Node) { n++ })
	return n
}

// HasIncludes reports whether the document contains intensional nodes.
func (d *Document) HasIncludes() bool {
	found := false
	d.Walk(func(n *Node) {
		if n.Include != "" {
			found = true
		}
	})
	return found
}

// entityDecl matches external entity declarations in an internal DTD
// subset: <!ENTITY name SYSTEM "uri">.
var entityDecl = regexp.MustCompile(`<!ENTITY\s+([A-Za-z_][\w.-]*)\s+SYSTEM\s+"([^"]*)"\s*>`)

// Parse reads one XML document and returns its tree with structural
// identifiers assigned. External entity references declared with
// <!ENTITY name SYSTEM "uri"> become include nodes.
func Parse(r io.Reader) (*Document, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xmltree: read: %w", err)
	}
	return ParseBytes(raw)
}

// ParseBytes parses an XML document held in memory.
func ParseBytes(raw []byte) (*Document, error) {
	entities := map[string]string{}
	for _, m := range entityDecl.FindAllSubmatch(raw, -1) {
		entities[string(m[1])] = string(m[2])
	}
	// Rewrite declared external entity references into include marker
	// elements, so the XML parser sees well-formed markup and the tree
	// records the intensional reference.
	text := string(raw)
	for name, uri := range entities {
		marker := fmt.Sprintf("<%s href=%q/>", IncludeLabel, uri)
		text = strings.ReplaceAll(text, "&"+name+";", marker)
	}

	dec := xml.NewDecoder(strings.NewReader(text))
	dec.Strict = false
	dec.AutoClose = xml.HTMLAutoClose

	var (
		doc   = &Document{}
		stack []*Node
		pos   uint32 = 1
	)
	openNode := func(label string) *Node {
		n := &Node{Label: label, SID: sid.SID{Start: pos, Level: uint16(len(stack))}}
		pos++
		if len(stack) == 0 {
			if doc.Root != nil {
				return nil
			}
			doc.Root = n
		} else {
			parent := stack[len(stack)-1]
			parent.Children = append(parent.Children, n)
		}
		stack = append(stack, n)
		return n
	}
	closeNode := func() {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n.SID.End = pos
		pos++
	}

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			label := t.Name.Local
			if t.Name.Space != "" {
				label = t.Name.Space + ":" + t.Name.Local
			}
			n := openNode(label)
			if n == nil {
				return nil, fmt.Errorf("xmltree: multiple root elements")
			}
			if label == IncludeLabel {
				for _, a := range t.Attr {
					if a.Name.Local == "href" {
						n.Include = a.Value
					}
				}
			} else {
				// Attributes become child elements holding the value words.
				for _, a := range t.Attr {
					if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
						continue
					}
					attr := openNode(a.Name.Local)
					attr.Words = Tokenize(a.Value)
					closeNode()
				}
			}
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end tag %s", t.Name.Local)
			}
			closeNode()
		case xml.CharData:
			if len(stack) > 0 {
				cur := stack[len(stack)-1]
				cur.Words = append(cur.Words, Tokenize(string(t))...)
			}
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: %d unclosed elements", len(stack))
	}
	if doc.Root == nil {
		return nil, fmt.Errorf("xmltree: no root element")
	}
	doc.Tags = pos - 1
	return doc, nil
}

// Tokenize splits text into lower-cased word tokens. Tokens are maximal
// runs of letters and digits; everything else separates words.
func Tokenize(s string) []string {
	var words []string
	start := -1
	flush := func(end int) {
		if start >= 0 {
			words = append(words, strings.ToLower(s[start:end]))
			start = -1
		}
	}
	for i, r := range s {
		alnum := r == '_' ||
			(r >= '0' && r <= '9') ||
			(r >= 'a' && r <= 'z') ||
			(r >= 'A' && r <= 'Z') ||
			r > 127
		if alnum {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(s))
	return words
}

// Term identifies one indexed term: an element label or a word.
type Term struct {
	Kind TermKind
	Text string
}

// TermKind distinguishes label terms from word terms; KadoP indexes
// both but keeps them in distinct key spaces.
type TermKind uint8

const (
	// Label is an element (or attribute) name term.
	Label TermKind = iota
	// Word is a text token term.
	Word
)

// Key returns the DHT key under which the term's postings are indexed.
func (t Term) Key() string {
	if t.Kind == Word {
		return "w:" + t.Text
	}
	return "l:" + t.Text
}

func (t Term) String() string { return t.Key() }

// LabelTerm and WordTerm are convenience constructors.
func LabelTerm(label string) Term { return Term{Kind: Label, Text: label} }
func WordTerm(word string) Term   { return Term{Kind: Word, Text: strings.ToLower(word)} }

// TermPosting pairs a term with one posting, one row of the Term
// relation of Section 2.
type TermPosting struct {
	Term    Term
	Posting sid.Posting
}

// ExtractOptions control term extraction.
type ExtractOptions struct {
	// StopWords are word terms to skip (very frequent words whose
	// posting lists would be large and useless). Label terms are never
	// skipped. Nil means no stop words.
	StopWords map[string]bool
	// SkipWords disables word indexing entirely (labels only).
	SkipWords bool
}

// DefaultStopWords is a small English stop word list used by the
// publishing pipeline unless overridden.
func DefaultStopWords() map[string]bool {
	words := []string{
		"a", "an", "and", "are", "as", "at", "be", "by", "for", "from",
		"in", "is", "it", "of", "on", "or", "that", "the", "to", "with",
	}
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}

// Extract walks the document and produces its Term relation rows for
// document (peer, doc): one Label posting per element and one Word
// posting per distinct word directly under each element. Include nodes
// produce a posting for the reserved include label so that the Fundex
// machinery can locate them.
func Extract(d *Document, peer sid.PeerID, docID sid.DocID, opts ExtractOptions) []TermPosting {
	var out []TermPosting
	d.Walk(func(n *Node) {
		p := sid.Posting{Peer: peer, Doc: docID, SID: n.SID}
		out = append(out, TermPosting{Term: LabelTerm(n.Label), Posting: p})
		if opts.SkipWords {
			return
		}
		seen := map[string]bool{}
		for _, w := range n.Words {
			if seen[w] || opts.StopWords[w] {
				continue
			}
			seen[w] = true
			out = append(out, TermPosting{Term: WordTerm(w), Posting: p})
		}
	})
	return out
}
