// Package dpp implements Distributed Posting Partitioning (Section 4 of
// the paper): long posting lists are split horizontally by range
// conditions into blocks that migrate to other peers, so that a query
// peer can fetch a popular term's list from many peers in parallel and
// skip blocks whose condition cannot contribute to the query.
//
// The organisation follows the paper's two-level implementation: the
// peer in charge of a term keeps the root block — the ordered list of
// conditions [lo, hi] with a pseudo-key per block — while the blocks
// themselves live at the peers in charge of the pseudo-keys
// "overflow:<n>:<term>". A block that outgrows the bound splits in two,
// one half moving to a fresh pseudo-key, and the root replaces the old
// condition with the two new ones.
//
// Fetching applies the document-interval filtering of Section 4.2:
// given the roots of all the query's terms, only blocks intersecting
// the interval [min, max] of document identifiers common to all terms
// are transferred, and each block ships only its intersection with that
// interval.
package dpp

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"kadop/internal/blockcache"
	"kadop/internal/dht"
	"kadop/internal/obs/cost"
	"kadop/internal/postings"
	"kadop/internal/replicate"
	"kadop/internal/sid"
	"kadop/internal/store"
)

// Proc names registered on every peer. The prefixes route traffic
// accounting: index: for publishing, stream: for posting transfers.
const (
	ProcAppend = "index:dpp:append"
	ProcRoot   = "dpp:root"
	ProcBlock  = "stream:dpp:block"
)

// DefaultBlockSize is the default bound on postings per block. The
// paper uses 4 MB blocks; at ~4 bytes per encoded posting this
// default models the same magnitude scaled to the experiments here.
const DefaultBlockSize = 4096

// BlockRef is one root-block entry: the condition [Lo, Hi] (in posting
// order), the pseudo-key of the block, the address of the peer holding
// it (the materialised pointer of the paper's ϕ function — fetches go
// straight to the holder instead of re-routing the pseudo-key), and
// its size.
type BlockRef struct {
	Lo, Hi sid.Posting
	Key    string
	Owner  string
	Count  int
	// Gen is the block's generation, bumped by every append or delete
	// that touches the block. Query peers key their block cache by
	// (term, key, gen), so a mutation makes every cached copy of the
	// block unreachable without any invalidation traffic: the next root
	// fetch carries the new generation.
	Gen uint64
	// Types are the document types present in the block (Section 4.1:
	// conditions carry type information so queries can skip blocks whose
	// types cannot match). Empty means untyped content: never skipped.
	Types []string
	// Replicas are extra peers currently advertised as holding a pushed
	// copy of this block (adaptive hot-term replication). Attached by
	// the home peer at serve time from its leased advertisements; never
	// part of the persisted root state.
	Replicas []string
}

// Root is the root DPP block for one term. A term that has not
// overflowed has no blocks; its list is inline at the home peer, and
// Count/Lo/Hi summarise it so the query planner can still compute the
// document-interval filter of Section 4.2.
type Root struct {
	Term    string
	Ordered bool // false for the randomised-split ablation
	Blocks  []BlockRef
	Count   int         // inline only: posting count
	Lo, Hi  sid.Posting // inline only: list bounds (when Count > 0)
	// Gen is the inline list's generation (see BlockRef.Gen); it tracks
	// appends and deletes while the term has not overflowed.
	Gen uint64
	// Types are the document types of the term's postings (inline or
	// across all blocks); empty means untyped.
	Types []string
	// Replicas are extra peers advertised as holding a pushed copy of
	// the inline list (see BlockRef.Replicas).
	Replicas []string
}

// maxTrackedTypes caps per-condition type sets; content with more
// distinct types degrades to untyped (never skipped), which keeps the
// filter conservative.
const maxTrackedTypes = 16

// addType inserts a type into a sorted set under the cap. The second
// return is false when the set overflowed and must be treated as
// untyped.
func addType(set []string, t string) ([]string, bool) {
	if t == "" {
		return set, true
	}
	for _, x := range set {
		if x == t {
			return set, true
		}
	}
	if len(set) >= maxTrackedTypes {
		return set, false
	}
	set = append(set, t)
	sort.Strings(set)
	return set, true
}

// typeMatches reports whether a condition's type set admits any of the
// allowed types (nil allowed or nil set means no constraint).
func typeMatches(set, allowed []string) bool {
	if len(set) == 0 || allowed == nil {
		return true
	}
	for _, a := range allowed {
		for _, s := range set {
			if a == s {
				return true
			}
		}
	}
	return false
}

// Manager runs the DPP logic on one peer: the home-side maintenance of
// roots and blocks, and the query-side parallel fetch. Register must be
// called once per peer so the manager's procedures are reachable.
type Manager struct {
	node      *dht.Node
	blockSize int
	ordered   bool
	cache     *blockcache.Cache

	persistPath string // "" = memory-only

	now func() time.Time

	mu          sync.Mutex
	roots       map[string]*Root
	inlineTypes map[string][]string // term -> types of its inline list
	inlineGen   map[string]uint64   // term -> inline list generation
	next        int                 // pseudo-key counter
	// ads holds the leased replica advertisements installed by
	// replication controllers (keyed by store key). Runtime-only state:
	// leases expire on their own, so it is never persisted.
	ads map[string]adEntry

	selMu sync.Mutex
	sel   *rand.Rand // replica-selection randomness (seeded)
}

// adEntry is one leased replica advertisement.
type adEntry struct {
	replicas []string
	count    uint64
	expire   int64 // unix nanoseconds
}

// Options configure a Manager.
type Options struct {
	// BlockSize bounds postings per block (DefaultBlockSize if 0).
	BlockSize int
	// RandomSplit selects the randomised split ablation of Section 4.1:
	// blocks still distribute across peers but carry no order, so
	// fetches must merge and cannot filter by condition.
	RandomSplit bool
	// Cache, when non-nil, caches fetched posting blocks at this peer
	// keyed by (term, block, generation), coalesces concurrent fetches
	// of the same block, and switches block transfers to full blocks
	// clipped client-side so cached copies are reusable across queries
	// with different document intervals.
	Cache *blockcache.Cache
	// PersistPath, when set, makes the home-side DPP state durable: the
	// root blocks, inline-list metadata and the pseudo-key counter are
	// rewritten (atomically) to this file after every mutation and
	// reloaded on construction, so a restarted peer still knows where
	// its terms' overflow blocks live. The blocks themselves are index
	// postings and persist through the node's store.
	PersistPath string
	// Now injects a clock for advertisement-lease checks (default
	// time.Now; the experiments drive it synthetically).
	Now func() time.Time
	// Seed drives the replica-selection randomness of the fetch path
	// (default 1, so seeded runs pick reproducible replicas).
	Seed int64
}

// NewManager creates the DPP manager for a node and registers its
// procedures on the node. With Options.PersistPath set it reloads the
// previously persisted root state; a corrupt or unreadable state file
// fails construction rather than silently forgetting block placements.
func NewManager(node *dht.Node, opts Options) (*Manager, error) {
	bs := opts.BlockSize
	if bs <= 0 {
		bs = DefaultBlockSize
	}
	m := &Manager{node: node, blockSize: bs, ordered: !opts.RandomSplit,
		cache: opts.Cache, persistPath: opts.PersistPath,
		roots: map[string]*Root{}, inlineTypes: map[string][]string{},
		inlineGen: map[string]uint64{}, ads: map[string]adEntry{},
		now: opts.Now}
	if m.now == nil {
		m.now = time.Now
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	m.sel = rand.New(rand.NewSource(seed + 0x9e1ec7))
	if err := m.load(); err != nil {
		return nil, err
	}
	node.Handle(ProcAppend, m.handleAppend)
	node.Handle(ProcDelete, m.handleDelete)
	node.Handle(ProcRoot, m.handleRoot)
	node.Handle(replicate.ProcAdvert, m.handleAdvert)
	node.HandleStreamProc(ProcBlock, m.handleBlock)
	return m, nil
}

// Cache returns the manager's block cache (nil when caching is off),
// for stats surfacing on the admin endpoint and in experiments.
func (m *Manager) Cache() *blockcache.Cache { return m.cache }

// storeReader is the read slice of store.Store shared with snapshots.
type storeReader interface {
	Get(term string) (postings.List, error)
	Scan(term string, from sid.Posting, fn func(sid.Posting) bool) error
	Count(term string) (int, error)
}

// readView pins a snapshot of the node's store for one serving read
// (root or block), falling back to the live store when the store has no
// snapshot support. Serving through snapshots keeps DPP fetches off the
// writer lock: a bulk publish in flight neither blocks a block transfer
// nor tears it mid-generation.
func (m *Manager) readView() (storeReader, func()) {
	if snap := store.SnapshotOf(m.node.Store()); snap != nil {
		return snap, func() { snap.Close() }
	}
	return m.node.Store(), func() {}
}

// Append routes postings for a term through the term's home peer, which
// maintains the DPP structure. It is the publishing-side entry point.
func (m *Manager) Append(term string, ps postings.List) error {
	return m.AppendTyped(term, ps, "")
}

// AppendTyped is Append for postings of a typed document (Section 4.1):
// the type is recorded in the conditions of the blocks that receive the
// postings, so queries constrained to other types skip them.
func (m *Manager) AppendTyped(term string, ps postings.List, dtype string) error {
	if len(ps) == 0 {
		return nil
	}
	sorted := ps.Clone()
	sorted.Sort()
	blob := appendStr(nil, dtype)
	enc, err := postings.Encode(sorted)
	if err != nil {
		return err
	}
	blob = append(blob, enc...)
	_, err = m.node.CallProc(term, ProcAppend, blob)
	return err
}

// handleAppend runs at the term's home peer.
func (m *Manager) handleAppend(_ context.Context, _ dht.Contact, term string, blob []byte) ([]byte, error) {
	dtype, pos, err := readStr(blob, 0)
	if err != nil {
		return nil, fmt.Errorf("dpp: append %q: %w", term, err)
	}
	ps, _, err := postings.Decode(blob[pos:])
	if err != nil {
		return nil, fmt.Errorf("dpp: append %q: %w", term, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.appendLocked(term, ps, dtype); err != nil {
		return nil, err
	}
	return nil, m.save()
}

// appendLocked applies one append under m.mu.
func (m *Manager) appendLocked(term string, ps postings.List, dtype string) error {
	root := m.roots[term]
	if root == nil {
		// Still inline: append locally, then split on overflow.
		if err := m.node.Store().Append(term, ps); err != nil {
			return err
		}
		m.inlineGen[term]++
		set, ok := addType(m.inlineTypes[term], dtype)
		if !ok {
			set = nil
		}
		m.inlineTypes[term] = set
		n, err := m.node.Store().Count(term)
		if err != nil {
			return err
		}
		if n <= m.blockSize {
			return nil
		}
		return m.overflow(term)
	}
	return m.routeToBlocks(root, ps, dtype)
}

// overflow converts an inline list into a DPP of bound-respecting
// blocks. A list that barely overflowed splits in two (the paper's
// base case); bulk loads split into as many blocks as the bound
// requires.
func (m *Manager) overflow(term string) error {
	list, err := m.node.Store().Get(term)
	if err != nil {
		return err
	}
	root := &Root{Term: term, Ordered: m.ordered, Types: m.inlineTypes[term]}
	m.roots[term] = root
	for _, h := range m.partition(list) {
		if err := m.pushBlock(root, h, root.Types); err != nil {
			return err
		}
	}
	return m.node.Store().DeleteTerm(term)
}

// partition divides a sorted list into ceil(n/blockSize) blocks of
// nearly equal size (at least two), each within the bound. Ordered mode
// cuts by ranges; the randomised ablation deals round-robin.
func (m *Manager) partition(list postings.List) []postings.List {
	k := (len(list) + m.blockSize - 1) / m.blockSize
	if k < 2 {
		k = 2
	}
	parts := make([]postings.List, k)
	if m.ordered {
		per := (len(list) + k - 1) / k
		for i := 0; i < k; i++ {
			lo := i * per
			hi := lo + per
			if lo > len(list) {
				lo = len(list)
			}
			if hi > len(list) {
				hi = len(list)
			}
			parts[i] = list[lo:hi]
		}
	} else {
		for i, p := range list {
			parts[i%k] = append(parts[i%k], p)
		}
	}
	out := parts[:0]
	for _, p := range parts {
		if len(p) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// pushBlock ships a new block to its pseudo-key's peer and appends its
// reference to the root.
func (m *Manager) pushBlock(root *Root, block postings.List, types []string) error {
	if len(block) == 0 {
		return nil
	}
	m.next++
	key := fmt.Sprintf("overflow:%d:%s", m.next, root.Term)
	owner, err := m.node.Locate(key)
	if err != nil {
		return err
	}
	if err := m.node.AppendAt(owner, key, block); err != nil {
		return err
	}
	root.Blocks = append(root.Blocks, BlockRef{
		Lo: block[0], Hi: block[len(block)-1], Key: key, Owner: owner.Addr,
		Count: len(block), Types: append([]string(nil), types...),
	})
	return nil
}

// routeToBlocks distributes sorted postings to the blocks whose
// conditions cover them, widening boundary conditions as needed, and
// splits blocks that exceed the bound.
func (m *Manager) routeToBlocks(root *Root, ps postings.List, dtype string) error {
	if len(root.Blocks) == 0 {
		var types []string
		if dtype != "" {
			types = []string{dtype}
		}
		return m.pushBlock(root, ps, types)
	}
	if !root.Ordered {
		// Random mode: spread arrivals round-robin across blocks.
		parts := make([]postings.List, len(root.Blocks))
		for i, p := range ps {
			j := i % len(root.Blocks)
			parts[j] = append(parts[j], p)
		}
		for i, part := range parts {
			if len(part) == 0 {
				continue
			}
			if err := m.appendToBlock(root, i, part, dtype); err != nil {
				return err
			}
		}
		return nil
	}
	// Ordered mode: walk blocks and postings together.
	i := 0
	for bi := range root.Blocks {
		if i >= len(ps) {
			break
		}
		var chunk postings.List
		if bi == len(root.Blocks)-1 {
			chunk = ps[i:] // everything else goes to the last block
			i = len(ps)
		} else {
			hi := root.Blocks[bi].Hi
			j := i
			for j < len(ps) && ps[j].Compare(hi) <= 0 {
				j++
			}
			chunk = ps[i:j]
			i = j
		}
		if len(chunk) == 0 {
			continue
		}
		if err := m.appendToBlock(root, bi, chunk, dtype); err != nil {
			return err
		}
	}
	return nil
}

// appendToBlock adds a chunk to block bi, widening its condition, and
// splits it if it overflows.
func (m *Manager) appendToBlock(root *Root, bi int, chunk postings.List, dtype string) error {
	ref := &root.Blocks[bi]
	if err := m.node.Append(ref.Key, chunk); err != nil {
		return err
	}
	ref.Gen++
	ref.Count += len(chunk)
	set, ok := addType(ref.Types, dtype)
	if !ok {
		set = nil
	}
	ref.Types = set
	if chunk[0].Compare(ref.Lo) < 0 {
		ref.Lo = chunk[0]
	}
	if chunk[len(chunk)-1].Compare(ref.Hi) > 0 {
		ref.Hi = chunk[len(chunk)-1]
	}
	if ref.Count <= m.blockSize {
		return nil
	}
	return m.splitBlock(root, bi)
}

// splitBlock fetches an overflowing block, splits it into
// bound-respecting pieces, moves them to fresh pseudo-keys and replaces
// the root condition with the new ones (the C -> C1, C2 step of
// Section 4.1, generalised for bulk appends).
func (m *Manager) splitBlock(root *Root, bi int) error {
	old := root.Blocks[bi]
	list, err := m.node.Get(old.Key)
	if err != nil {
		return err
	}
	if err := m.node.DeleteKey(old.Key); err != nil {
		return err
	}
	halves := m.partition(list)
	var refs []BlockRef
	for _, h := range halves {
		if len(h) == 0 {
			continue
		}
		m.next++
		key := fmt.Sprintf("overflow:%d:%s", m.next, root.Term)
		owner, err := m.node.Locate(key)
		if err != nil {
			return err
		}
		if err := m.node.AppendAt(owner, key, h); err != nil {
			return err
		}
		refs = append(refs, BlockRef{Lo: h[0], Hi: h[len(h)-1], Key: key, Owner: owner.Addr,
			Count: len(h), Types: append([]string(nil), old.Types...)})
	}
	root.Blocks = append(root.Blocks[:bi], append(refs, root.Blocks[bi+1:]...)...)
	return nil
}

// handleAdvert installs (or, with an empty replica list, revokes) a
// leased replica advertisement pushed by a replication controller. The
// advertisement's count pins the copy's freshness: handleRoot only
// serves it while the local count still matches, so an append that
// lands after the push silently disables the stale replicas until the
// controller re-pushes and re-advertises.
func (m *Manager) handleAdvert(_ context.Context, _ dht.Contact, _ string, blob []byte) ([]byte, error) {
	ad, err := replicate.DecodeSet(blob)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(ad.Replicas) == 0 || ad.Expire <= m.now().UnixNano() {
		delete(m.ads, ad.Key)
		return nil, nil
	}
	m.ads[ad.Key] = adEntry{replicas: ad.Replicas, count: ad.Count, expire: ad.Expire}
	return nil, nil
}

// adReplicas returns the advertised replicas for a store key if the
// lease is live and the advertised count matches the current one,
// garbage-collecting dead entries. Caller holds m.mu.
func (m *Manager) adReplicas(key string, count int) []string {
	ad, ok := m.ads[key]
	if !ok {
		return nil
	}
	if ad.expire <= m.now().UnixNano() {
		delete(m.ads, key)
		return nil
	}
	if ad.count != uint64(count) {
		return nil
	}
	return ad.replicas
}

// handleRoot serves the root block of a term this peer is home for.
// A term that never overflowed reports itself inline, with its local
// list's bounds attached for the document-interval computation. Live
// replica advertisements ride along, so query peers learn the extra
// holders of a hot term from the root fetch they make anyway.
func (m *Manager) handleRoot(_ context.Context, _ dht.Contact, term string, _ []byte) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	root := m.roots[term]
	if root == nil {
		inline := &Root{Term: term, Types: m.inlineTypes[term], Gen: m.inlineGen[term]}
		first := true
		view, release := m.readView()
		defer release()
		err := view.Scan(term, sid.MinPosting, func(p sid.Posting) bool {
			if first {
				inline.Lo = p
				first = false
			}
			inline.Hi = p
			inline.Count++
			return true
		})
		if err != nil {
			return nil, err
		}
		inline.Replicas = m.adReplicas(term, inline.Count)
		return encodeRoot(inline), nil
	}
	if len(m.ads) == 0 {
		return encodeRoot(root), nil
	}
	// Attach advertisements on a copy; the stored root stays ad-free.
	served := *root
	served.Blocks = append([]BlockRef(nil), root.Blocks...)
	for i := range served.Blocks {
		served.Blocks[i].Replicas = m.adReplicas(served.Blocks[i].Key, served.Blocks[i].Count)
	}
	return encodeRoot(&served), nil
}

// handleBlock streams a block's postings, clipped to the requested
// document interval (empty blob means no clipping).
func (m *Manager) handleBlock(_ context.Context, _ dht.Contact, key string, blob []byte, send func(postings.List) error) error {
	lo, hi, clip, err := decodeInterval(blob)
	if err != nil {
		return err
	}
	m.node.Load().ServeBlock()
	// Serve from a snapshot: the block transfer sees one committed
	// generation even while the home peer absorbs a bulk publish, and
	// the scan holds no lock a concurrent batch commit would wait on.
	view, release := m.readView()
	defer release()
	const batchSize = 512
	batch := make(postings.List, 0, batchSize)
	var sendErr error
	err = view.Scan(key, sid.MinPosting, func(p sid.Posting) bool {
		if clip {
			k := p.Key()
			if k.Compare(lo) < 0 {
				return true
			}
			if k.Compare(hi) > 0 {
				return false // sorted: nothing further can match
			}
		}
		batch = append(batch, p)
		if len(batch) == batchSize {
			sendErr = send(batch)
			batch = batch[:0]
			return sendErr == nil
		}
		return true
	})
	if err != nil {
		return err
	}
	if sendErr != nil {
		return sendErr
	}
	if len(batch) > 0 {
		return send(batch)
	}
	return nil
}

// Root fetches the root block of a term from its home peer.
func (m *Manager) Root(term string) (*Root, error) {
	return m.RootContext(context.Background(), term)
}

// RootContext is Root under a caller-controlled deadline.
func (m *Manager) RootContext(ctx context.Context, term string) (*Root, error) {
	cost.FromContext(ctx).AddRootFetches(1)
	blob, err := m.node.CallProcContext(ctx, term, ProcRoot, nil)
	if err != nil {
		return nil, err
	}
	return decodeRoot(blob)
}

// encoding of roots and intervals ------------------------------------

func encodeRoot(r *Root) []byte {
	buf := make([]byte, 0, 32+len(r.Blocks)*48)
	buf = appendStr(buf, r.Term)
	if r.Ordered {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(r.Count))
	buf = binary.AppendUvarint(buf, r.Gen)
	buf = appendPosting(buf, r.Lo)
	buf = appendPosting(buf, r.Hi)
	buf = appendStrs(buf, r.Types)
	buf = appendStrs(buf, r.Replicas)
	buf = binary.AppendUvarint(buf, uint64(len(r.Blocks)))
	for _, b := range r.Blocks {
		buf = appendStr(buf, b.Key)
		buf = appendStr(buf, b.Owner)
		buf = appendPosting(buf, b.Lo)
		buf = appendPosting(buf, b.Hi)
		buf = binary.AppendUvarint(buf, uint64(b.Count))
		buf = binary.AppendUvarint(buf, b.Gen)
		buf = appendStrs(buf, b.Types)
		buf = appendStrs(buf, b.Replicas)
	}
	return buf
}

func appendStrs(buf []byte, ss []string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ss)))
	for _, s := range ss {
		buf = appendStr(buf, s)
	}
	return buf
}

func readStrs(buf []byte, pos int) ([]string, int, error) {
	n, sz := binary.Uvarint(buf[pos:])
	if sz <= 0 || n > uint64(len(buf)) {
		return nil, pos, fmt.Errorf("dpp: bad string-set length at %d", pos)
	}
	pos += sz
	var out []string
	for i := uint64(0); i < n; i++ {
		var s string
		var err error
		if s, pos, err = readStr(buf, pos); err != nil {
			return nil, pos, err
		}
		out = append(out, s)
	}
	return out, pos, nil
}

func decodeRoot(buf []byte) (*Root, error) {
	r := &Root{}
	pos := 0
	var err error
	if r.Term, pos, err = readStr(buf, pos); err != nil {
		return nil, fmt.Errorf("dpp: decode root: %w", err)
	}
	if pos >= len(buf) {
		return nil, fmt.Errorf("dpp: decode root: truncated")
	}
	r.Ordered = buf[pos] == 1
	pos++
	cnt, sz := binary.Uvarint(buf[pos:])
	if sz <= 0 {
		return nil, fmt.Errorf("dpp: decode root: bad inline count")
	}
	pos += sz
	r.Count = int(cnt)
	g, sz := binary.Uvarint(buf[pos:])
	if sz <= 0 {
		return nil, fmt.Errorf("dpp: decode root: bad generation")
	}
	pos += sz
	r.Gen = g
	if r.Lo, pos, err = readPosting(buf, pos); err != nil {
		return nil, err
	}
	if r.Hi, pos, err = readPosting(buf, pos); err != nil {
		return nil, err
	}
	if r.Types, pos, err = readStrs(buf, pos); err != nil {
		return nil, err
	}
	if r.Replicas, pos, err = readStrs(buf, pos); err != nil {
		return nil, err
	}
	n, sz := binary.Uvarint(buf[pos:])
	if sz <= 0 || n > uint64(len(buf)) {
		return nil, fmt.Errorf("dpp: decode root: bad block count")
	}
	pos += sz
	for i := uint64(0); i < n; i++ {
		var b BlockRef
		if b.Key, pos, err = readStr(buf, pos); err != nil {
			return nil, fmt.Errorf("dpp: decode root block %d: %w", i, err)
		}
		if b.Owner, pos, err = readStr(buf, pos); err != nil {
			return nil, fmt.Errorf("dpp: decode root block %d owner: %w", i, err)
		}
		if b.Lo, pos, err = readPosting(buf, pos); err != nil {
			return nil, err
		}
		if b.Hi, pos, err = readPosting(buf, pos); err != nil {
			return nil, err
		}
		c, sz := binary.Uvarint(buf[pos:])
		if sz <= 0 {
			return nil, fmt.Errorf("dpp: decode root: bad count")
		}
		pos += sz
		b.Count = int(c)
		bg, sz := binary.Uvarint(buf[pos:])
		if sz <= 0 {
			return nil, fmt.Errorf("dpp: decode root: bad block generation")
		}
		pos += sz
		b.Gen = bg
		if b.Types, pos, err = readStrs(buf, pos); err != nil {
			return nil, err
		}
		if b.Replicas, pos, err = readStrs(buf, pos); err != nil {
			return nil, err
		}
		r.Blocks = append(r.Blocks, b)
	}
	return r, nil
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readStr(buf []byte, pos int) (string, int, error) {
	n, sz := binary.Uvarint(buf[pos:])
	if sz <= 0 || pos+sz+int(n) > len(buf) {
		return "", pos, fmt.Errorf("truncated string at %d", pos)
	}
	pos += sz
	return string(buf[pos : pos+int(n)]), pos + int(n), nil
}

func appendPosting(buf []byte, p sid.Posting) []byte {
	var b [18]byte
	binary.BigEndian.PutUint32(b[0:], uint32(p.Peer))
	binary.BigEndian.PutUint32(b[4:], uint32(p.Doc))
	binary.BigEndian.PutUint32(b[8:], p.SID.Start)
	binary.BigEndian.PutUint32(b[12:], p.SID.End)
	binary.BigEndian.PutUint16(b[16:], p.SID.Level)
	return append(buf, b[:]...)
}

func readPosting(buf []byte, pos int) (sid.Posting, int, error) {
	if pos+18 > len(buf) {
		return sid.Posting{}, pos, fmt.Errorf("dpp: truncated posting at %d", pos)
	}
	b := buf[pos:]
	p := sid.Posting{
		Peer: sid.PeerID(binary.BigEndian.Uint32(b[0:])),
		Doc:  sid.DocID(binary.BigEndian.Uint32(b[4:])),
		SID: sid.SID{
			Start: binary.BigEndian.Uint32(b[8:]),
			End:   binary.BigEndian.Uint32(b[12:]),
			Level: binary.BigEndian.Uint16(b[16:]),
		},
	}
	return p, pos + 18, nil
}

func encodeInterval(lo, hi sid.DocKey) []byte {
	buf := make([]byte, 0, 17)
	buf = append(buf, 1)
	var b [16]byte
	binary.BigEndian.PutUint32(b[0:], uint32(lo.Peer))
	binary.BigEndian.PutUint32(b[4:], uint32(lo.Doc))
	binary.BigEndian.PutUint32(b[8:], uint32(hi.Peer))
	binary.BigEndian.PutUint32(b[12:], uint32(hi.Doc))
	return append(buf, b[:]...)
}

func decodeInterval(blob []byte) (lo, hi sid.DocKey, clip bool, err error) {
	if len(blob) == 0 {
		return sid.DocKey{}, sid.DocKey{}, false, nil
	}
	if len(blob) != 17 || blob[0] != 1 {
		return sid.DocKey{}, sid.DocKey{}, false, fmt.Errorf("dpp: malformed interval blob (%d bytes)", len(blob))
	}
	b := blob[1:]
	lo = sid.DocKey{Peer: sid.PeerID(binary.BigEndian.Uint32(b[0:])), Doc: sid.DocID(binary.BigEndian.Uint32(b[4:]))}
	hi = sid.DocKey{Peer: sid.PeerID(binary.BigEndian.Uint32(b[8:])), Doc: sid.DocID(binary.BigEndian.Uint32(b[12:]))}
	return lo, hi, true, nil
}

// ProcDelete is the deletion procedure: the home peer routes a
// posting's removal to the block holding it (document modification is
// deletion followed by re-insertion, as in Section 2).
const ProcDelete = "index:dpp:delete"

// Delete removes postings of a term through the term's home peer, so
// deletions reach overflow blocks as well as inline lists.
func (m *Manager) Delete(term string, ps postings.List) error {
	if len(ps) == 0 {
		return nil
	}
	sorted := ps.Clone()
	sorted.Sort()
	enc, err := postings.Encode(sorted)
	if err != nil {
		return err
	}
	_, err = m.node.CallProc(term, ProcDelete, enc)
	return err
}

// handleDelete runs at the term's home peer.
func (m *Manager) handleDelete(_ context.Context, _ dht.Contact, term string, blob []byte) ([]byte, error) {
	ps, _, err := postings.Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("dpp: delete %q: %w", term, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	root := m.roots[term]
	if root == nil {
		for _, p := range ps {
			if err := m.node.Store().Delete(term, p); err != nil {
				return nil, err
			}
		}
		m.inlineGen[term]++
		return nil, m.save()
	}
	for _, p := range ps {
		for bi := range root.Blocks {
			ref := &root.Blocks[bi]
			if p.Compare(ref.Lo) < 0 || p.Compare(ref.Hi) > 0 {
				continue
			}
			owner := dht.Contact{ID: dht.PeerIDFromSeed(ref.Owner), Addr: ref.Owner}
			if err := m.node.DeleteAt(owner, ref.Key, p); err != nil {
				return nil, err
			}
			ref.Gen++
			if ref.Count > 0 {
				ref.Count--
			}
			break
		}
	}
	// Drop emptied blocks from the root.
	kept := root.Blocks[:0]
	for _, b := range root.Blocks {
		if b.Count > 0 {
			kept = append(kept, b)
		}
	}
	root.Blocks = kept
	return nil, m.save()
}
