package dpp

import (
	"encoding/json"
	"fmt"
	"os"
)

// Durable DPP root state. The root blocks are the ϕ function of the
// paper — without them a restarted home peer has no idea which
// pseudo-keys its overflowed terms scattered to, even though the block
// postings themselves sit safely in the peers' durable stores. The
// state is tiny (a few references per overflowed term), so it is
// rewritten whole on every mutation: marshal, write to a temp file,
// fsync, rename. The rename is atomic, so a crash leaves either the old
// or the new state, never a torn one.

// persistedState is the JSON layout of the state file.
type persistedState struct {
	Roots       map[string]*Root    `json:"roots"`
	InlineTypes map[string][]string `json:"inline_types,omitempty"`
	InlineGen   map[string]uint64   `json:"inline_gen,omitempty"`
	Next        int                 `json:"next"`
}

// load reads the state file into the manager (no-op without a path or
// file). Called once from NewManager, before the mutex matters.
func (m *Manager) load() error {
	if m.persistPath == "" {
		return nil
	}
	data, err := os.ReadFile(m.persistPath)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("dpp: load state %s: %w", m.persistPath, err)
	}
	var st persistedState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("dpp: load state %s: %w", m.persistPath, err)
	}
	if st.Roots != nil {
		m.roots = st.Roots
	}
	if st.InlineTypes != nil {
		m.inlineTypes = st.InlineTypes
	}
	if st.InlineGen != nil {
		m.inlineGen = st.InlineGen
	}
	m.next = st.Next
	return nil
}

// save rewrites the state file atomically. Callers hold m.mu. Without a
// path it is free, so the mutation handlers call it unconditionally.
func (m *Manager) save() error {
	if m.persistPath == "" {
		return nil
	}
	data, err := json.Marshal(persistedState{
		Roots:       m.roots,
		InlineTypes: m.inlineTypes,
		InlineGen:   m.inlineGen,
		Next:        m.next,
	})
	if err != nil {
		return err
	}
	tmp := m.persistPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("dpp: save state: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("dpp: save state: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("dpp: save state: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dpp: save state: %w", err)
	}
	if err := os.Rename(tmp, m.persistPath); err != nil {
		return fmt.Errorf("dpp: save state: %w", err)
	}
	return nil
}
