package dpp

import (
	"context"
	"fmt"
	"sync"
	"time"

	"kadop/internal/dht"
	"kadop/internal/metrics"
	"kadop/internal/postings"
	"kadop/internal/sid"
	"kadop/internal/trace"
)

// FetchPlan reports what a fetch decided: how many blocks the term has,
// how many the document-interval filter kept, and whether the list was
// still inline at its home peer.
type FetchPlan struct {
	Term       string
	Inline     bool
	Blocks     int
	Fetched    int
	Parallel   int
	DocClipped bool
}

// FetchOptions configure the query-side fetch.
type FetchOptions struct {
	// Parallel is the maximum number of blocks in flight (the paper's
	// degree of parallelism K; default 4).
	Parallel int
	// Filter restricts the fetch to postings of documents within
	// [FilterLo, FilterHi] (Section 4.2). Zero values mean no filter.
	Filter             bool
	FilterLo, FilterHi sid.DocKey
	// NoConditionFilter disables the block-level condition filtering
	// while keeping the interval clip, for the ablation benchmarks.
	NoConditionFilter bool
	// AllowedTypes restricts the fetch to blocks whose type sets
	// intersect it (Section 4.1's type filtering); nil means no type
	// constraint, and untyped blocks are always transferred.
	AllowedTypes []string
}

// Fetch returns a stream over the term's full (possibly clipped)
// posting list, transferring DPP blocks from their peers with bounded
// parallelism. For ordered DPPs the blocks concatenate in canonical
// order; the randomised ablation merges them.
func (m *Manager) Fetch(term string, opts FetchOptions) (postings.Stream, *FetchPlan, error) {
	return m.FetchContext(context.Background(), term, opts)
}

// FetchContext is Fetch under a caller-controlled deadline.
func (m *Manager) FetchContext(ctx context.Context, term string, opts FetchOptions) (postings.Stream, *FetchPlan, error) {
	root, err := m.RootContext(ctx, term)
	if err != nil {
		return nil, nil, err
	}
	return m.FetchWithRootContext(ctx, root, opts)
}

// FetchWithRoot is Fetch for a root already retrieved (the query
// planner gets all roots first to compute the document interval).
func (m *Manager) FetchWithRoot(root *Root, opts FetchOptions) (postings.Stream, *FetchPlan, error) {
	return m.FetchWithRootContext(context.Background(), root, opts)
}

// FetchWithRootContext is FetchWithRoot under a caller-controlled
// deadline, which bounds the root and block transfers.
func (m *Manager) FetchWithRootContext(ctx context.Context, root *Root, opts FetchOptions) (postings.Stream, *FetchPlan, error) {
	if opts.Parallel <= 0 {
		opts.Parallel = 4
	}
	plan := &FetchPlan{Term: root.Term, Blocks: len(root.Blocks), Parallel: opts.Parallel, DocClipped: opts.Filter}
	// The fan-out span covers the fetch decision; the fetch itself
	// streams on, so block transfers appear as their own child spans and
	// the pipeline's cost lands in the consumer's transfer accounting.
	if sp := trace.FromContext(ctx); sp != nil {
		defer func() {
			c := sp.Child("dpp:fetch", time.Now(), 0)
			c.SetAttr("term", root.Term)
			c.SetInt("blocks", int64(plan.Blocks))
			c.SetInt("fetched", int64(plan.Fetched))
			c.SetInt("parallel", int64(plan.Parallel))
			if plan.Inline {
				c.SetAttr("inline", "true")
			}
		}()
	}
	if len(root.Blocks) == 0 {
		// Inline list at the home peer.
		plan.Inline = true
		if !typeMatches(root.Types, opts.AllowedTypes) {
			return postings.NewSliceStream(nil), plan, nil
		}
		s, err := m.node.GetStreamContext(ctx, root.Term)
		if err != nil {
			return nil, nil, err
		}
		if opts.Filter {
			s = clipStream(s, opts.FilterLo, opts.FilterHi)
		}
		return s, plan, nil
	}

	// Select blocks: keep those whose condition intersects the filter
	// and whose types can match.
	var keep []BlockRef
	for _, b := range root.Blocks {
		if opts.Filter && root.Ordered && !opts.NoConditionFilter {
			if b.Hi.Key().Compare(opts.FilterLo) < 0 || b.Lo.Key().Compare(opts.FilterHi) > 0 {
				continue
			}
		}
		if !opts.NoConditionFilter && !typeMatches(b.Types, opts.AllowedTypes) {
			continue
		}
		keep = append(keep, b)
	}
	plan.Fetched = len(keep)
	if len(keep) == 0 {
		return postings.NewSliceStream(nil), plan, nil
	}

	var blob []byte
	if opts.Filter {
		blob = encodeInterval(opts.FilterLo, opts.FilterHi)
	}

	// Fetch with a sliding window of Parallel blocks in flight. Each
	// slot drains its block stream in the background; the consumer reads
	// the results in block order (ordered DPP) or merged (random DPP).
	results := make([]chan fetched, len(keep))
	for i := range results {
		results[i] = make(chan fetched, 1)
	}
	sem := make(chan struct{}, opts.Parallel)
	go func() {
		for i, b := range keep {
			sem <- struct{}{}
			go func(i int, b BlockRef) {
				defer func() { <-sem }()
				list, err := m.fetchBlock(ctx, b, blob)
				results[i] <- fetched{list: list, err: err}
			}(i, b)
		}
	}()

	if root.Ordered {
		out := postings.NewPipe(m.blockSize)
		go func() {
			for i := range results {
				r := <-results[i]
				if r.err != nil {
					out.Close(fmt.Errorf("dpp: fetch block %s: %w", keep[i].Key, r.err))
					return
				}
				if !out.Send(r.list) {
					return
				}
			}
			out.Close(nil)
		}()
		return out, plan, nil
	}

	// Random ablation: gather everything, merge.
	var wg sync.WaitGroup
	lists := make([]postings.List, len(keep))
	var firstErr error
	var mu sync.Mutex
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := <-results[i]
			mu.Lock()
			defer mu.Unlock()
			if r.err != nil && firstErr == nil {
				firstErr = r.err
			}
			lists[i] = r.list
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	streams := make([]postings.Stream, len(lists))
	for i, l := range lists {
		streams[i] = postings.NewSliceStream(l)
	}
	return postings.MergeStreams(streams...), plan, nil
}

type fetched struct {
	list postings.List
	err  error
}

// fetchBlock contacts the block's holder (recorded in the root block;
// a lookup of the pseudo-key is the fallback when the pointer is
// stale) and drains its (clipped) stream.
func (m *Manager) fetchBlock(ctx context.Context, b BlockRef, intervalBlob []byte) (postings.List, error) {
	start := time.Now()
	owner := dht.Contact{ID: dht.PeerIDFromSeed(b.Owner), Addr: b.Owner}
	if b.Owner == "" {
		var err error
		owner, err = m.node.LocateContext(ctx, b.Key)
		if err != nil {
			return nil, err
		}
	}
	s, err := m.node.OpenProcStreamContext(ctx, owner, b.Key, ProcBlock, intervalBlob)
	if err != nil {
		// Stale pointer (the holder left): fall back to routing.
		owner, lerr := m.node.LocateContext(ctx, b.Key)
		if lerr != nil {
			return nil, err
		}
		s, err = m.node.OpenProcStreamContext(ctx, owner, b.Key, ProcBlock, intervalBlob)
		if err != nil {
			return nil, err
		}
	}
	list, err := postings.Drain(s)
	dur := time.Since(start)
	m.node.Metrics().Observe(metrics.OpDPPFetch, dur)
	if sp := trace.FromContext(ctx); sp != nil {
		c := sp.Child("dpp:block", start, dur)
		c.SetAttr("block", b.Key)
		c.SetInt("postings", int64(len(list)))
		if err != nil {
			c.SetAttr("error", err.Error())
		}
	}
	return list, err
}

// clipStream filters a stream to the document interval (client side,
// for inline lists, where the transfer already happened and only the
// join input needs narrowing).
func clipStream(s postings.Stream, lo, hi sid.DocKey) postings.Stream {
	return &clippedStream{s: s, lo: lo, hi: hi}
}

type clippedStream struct {
	s      postings.Stream
	lo, hi sid.DocKey
}

func (c *clippedStream) Next() (sid.Posting, error) {
	for {
		p, err := c.s.Next()
		if err != nil {
			return p, err
		}
		k := p.Key()
		if k.Compare(c.lo) < 0 {
			continue
		}
		if k.Compare(c.hi) > 0 {
			continue
		}
		return p, nil
	}
}
