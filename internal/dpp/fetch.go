package dpp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"kadop/internal/blockcache"
	"kadop/internal/dht"
	"kadop/internal/metrics"
	"kadop/internal/obs/cost"
	"kadop/internal/postings"
	"kadop/internal/replicate"
	"kadop/internal/sid"
	"kadop/internal/trace"
)

// FetchPlan reports what a fetch decided: how many blocks the term has,
// how many the document-interval filter kept, and whether the list was
// still inline at its home peer.
type FetchPlan struct {
	Term       string
	Inline     bool
	Blocks     int
	Fetched    int
	Parallel   int
	DocClipped bool
	// CacheHits counts blocks (or the inline list) served from the
	// query-peer block cache instead of the network.
	CacheHits int
	// Postings is the root's promise of how many postings the kept
	// blocks (or the inline list) hold — the planner's cardinality
	// input, known before a single posting transfers.
	Postings int
	// Probes and Sheds count replica probes and overload sheds on the
	// synchronous inline path only; block-path probes run in fetch
	// goroutines after the plan is returned and are attributed to
	// their dpp:block spans instead.
	Probes int
	Sheds  int
}

// FetchOptions configure the query-side fetch.
type FetchOptions struct {
	// Parallel is the maximum number of blocks in flight (the paper's
	// degree of parallelism K; default 4).
	Parallel int
	// Filter restricts the fetch to postings of documents within
	// [FilterLo, FilterHi] (Section 4.2). Zero values mean no filter.
	Filter             bool
	FilterLo, FilterHi sid.DocKey
	// NoConditionFilter disables the block-level condition filtering
	// while keeping the interval clip, for the ablation benchmarks.
	NoConditionFilter bool
	// AllowedTypes restricts the fetch to blocks whose type sets
	// intersect it (Section 4.1's type filtering); nil means no type
	// constraint, and untyped blocks are always transferred.
	AllowedTypes []string
}

// Fetch returns a stream over the term's full (possibly clipped)
// posting list, transferring DPP blocks from their peers with bounded
// parallelism. For ordered DPPs the blocks concatenate in canonical
// order; the randomised ablation merges them.
func (m *Manager) Fetch(term string, opts FetchOptions) (postings.Stream, *FetchPlan, error) {
	return m.FetchContext(context.Background(), term, opts)
}

// FetchContext is Fetch under a caller-controlled deadline.
func (m *Manager) FetchContext(ctx context.Context, term string, opts FetchOptions) (postings.Stream, *FetchPlan, error) {
	root, err := m.RootContext(ctx, term)
	if err != nil {
		return nil, nil, err
	}
	return m.FetchWithRootContext(ctx, root, opts)
}

// FetchWithRoot is Fetch for a root already retrieved (the query
// planner gets all roots first to compute the document interval).
func (m *Manager) FetchWithRoot(root *Root, opts FetchOptions) (postings.Stream, *FetchPlan, error) {
	return m.FetchWithRootContext(context.Background(), root, opts)
}

// FetchWithRootContext is FetchWithRoot under a caller-controlled
// deadline, which bounds the root and block transfers.
//
// With a block cache configured, the condition-based block selection of
// Section 4 is unchanged, but kept blocks are looked up in the cache by
// (term, key, generation) first; misses transfer the FULL block — the
// interval clip moves to this side — so the cached copy serves any
// later interval, and concurrent fetches of one block coalesce into a
// single transfer. Miss blocks co-located on one peer are fetched in a
// single batched round trip.
func (m *Manager) FetchWithRootContext(ctx context.Context, root *Root, opts FetchOptions) (postings.Stream, *FetchPlan, error) {
	if opts.Parallel <= 0 {
		opts.Parallel = 4
	}
	plan := &FetchPlan{Term: root.Term, Blocks: len(root.Blocks), Parallel: opts.Parallel, DocClipped: opts.Filter}
	cc := cost.FromContext(ctx)
	// The fan-out span covers the fetch decision; the fetch itself
	// streams on, so block transfers appear as their own child spans and
	// the pipeline's cost lands in the consumer's transfer accounting.
	if sp := trace.FromContext(ctx); sp != nil {
		defer func() {
			c := sp.Child("dpp:fetch", time.Now(), 0)
			c.SetAttr("term", root.Term)
			c.SetInt("blocks", int64(plan.Blocks))
			c.SetInt("fetched", int64(plan.Fetched))
			c.SetInt("parallel", int64(plan.Parallel))
			c.SetInt("cache-hits", int64(plan.CacheHits))
			if plan.Probes > 0 {
				c.SetInt("probes", int64(plan.Probes))
			}
			if plan.Sheds > 0 {
				c.SetInt("sheds", int64(plan.Sheds))
			}
			if plan.Inline {
				c.SetAttr("inline", "true")
			}
		}()
	}
	if len(root.Blocks) == 0 {
		return m.fetchInline(ctx, root, opts, plan)
	}

	// Select blocks: keep those whose condition intersects the filter
	// and whose types can match.
	var keep []BlockRef
	for _, b := range root.Blocks {
		if opts.Filter && root.Ordered && !opts.NoConditionFilter {
			if b.Hi.Key().Compare(opts.FilterLo) < 0 || b.Lo.Key().Compare(opts.FilterHi) > 0 {
				continue
			}
		}
		if !opts.NoConditionFilter && !typeMatches(b.Types, opts.AllowedTypes) {
			continue
		}
		keep = append(keep, b)
	}
	plan.Fetched = len(keep)
	for _, b := range keep {
		plan.Postings += b.Count
	}
	if len(keep) == 0 {
		return postings.NewSliceStream(nil), plan, nil
	}

	// With a cache, blocks transfer whole and the interval clip applies
	// on this side; without one the holder clips (the old behaviour),
	// which also rules batching out under a filter — an empty clipped
	// block and a stale owner would be indistinguishable.
	cacheOn := m.cache != nil
	clientClip := opts.Filter && cacheOn
	var blob []byte
	if opts.Filter && !cacheOn {
		blob = encodeInterval(opts.FilterLo, opts.FilterHi)
	}
	clip := func(l postings.List) postings.List {
		if clientClip {
			return l.ClipDocs(opts.FilterLo, opts.FilterHi)
		}
		return l
	}

	// Each kept block gets a result slot; the consumer below reads them
	// in block order (ordered DPP) or merges them (random ablation).
	results := make([]chan fetched, len(keep))
	for i := range results {
		results[i] = make(chan fetched, 1)
	}

	// Resolve cache hits and coalesced waiters now; what remains are
	// leaders, which owe the network a transfer each.
	type leaderBlock struct {
		i      int
		b      BlockRef
		key    blockcache.Key
		flight *blockcache.Flight
	}
	var leaders []leaderBlock
	for i, b := range keep {
		k := blockcache.Key{Term: root.Term, Block: b.Key, Gen: b.Gen}
		if l, ok := m.cache.Get(k); ok {
			plan.CacheHits++
			cc.AddCacheHits(1)
			results[i] <- fetched{list: clip(l)}
			continue
		}
		f, lead := m.cache.BeginFlight(k)
		if !lead {
			go func(i int, f *blockcache.Flight) {
				l, err := f.Wait(ctx)
				results[i] <- fetched{list: clip(l), err: err}
			}(i, f)
			continue
		}
		leaders = append(leaders, leaderBlock{i: i, b: b, key: k, flight: f})
	}

	// finish publishes a leader's result to its flight (unblocking any
	// coalesced waiters, and caching the block) and to its result slot.
	finish := func(lb leaderBlock, l postings.List, err error) {
		m.cache.Complete(lb.key, lb.flight, l, err)
		results[lb.i] <- fetched{list: clip(l), err: err}
	}
	fetchOne := func(lb leaderBlock) {
		l, err := m.fetchBlock(ctx, lb.b, blob)
		finish(lb, l, err)
	}

	// Group leader blocks by recorded owner: two or more on one peer
	// fetch in a single round trip. Batching transfers full blocks, so
	// it only applies when a cache clips client-side or no filter is
	// set; otherwise every block degrades to its own clipped get.
	singles, batches := planBatches(leaders, cacheOn || !opts.Filter, func(lb leaderBlock) string {
		return lb.b.Owner
	})

	sem := make(chan struct{}, opts.Parallel)
	go func() {
		for _, lb := range singles {
			sem <- struct{}{}
			go func(lb leaderBlock) {
				defer func() { <-sem }()
				fetchOne(lb)
			}(lb)
		}
		for owner, group := range batches {
			sem <- struct{}{}
			go func(owner string, group []leaderBlock) {
				defer func() { <-sem }()
				keys := make([]string, len(group))
				for gi, lb := range group {
					keys[gi] = lb.b.Key
				}
				got, err := m.fetchBatch(ctx, owner, keys)
				for _, lb := range group {
					if err != nil || (len(got[lb.b.Key]) == 0 && lb.b.Count > 0) {
						// The whole batch failed, or this block came back
						// empty from a peer that should hold postings (a
						// stale owner): fall back to the rotating
						// per-block fetch.
						fetchOne(lb)
						continue
					}
					finish(lb, got[lb.b.Key], nil)
				}
			}(owner, group)
		}
	}()

	if root.Ordered {
		out := postings.NewPipe(m.blockSize)
		go func() {
			for i := range results {
				r := <-results[i]
				if r.err != nil {
					out.Close(fmt.Errorf("dpp: fetch block %s: %w", keep[i].Key, r.err))
					return
				}
				if !out.Send(r.list) {
					return
				}
			}
			out.Close(nil)
		}()
		return out, plan, nil
	}

	// Random ablation: gather everything, merge.
	var wg sync.WaitGroup
	lists := make([]postings.List, len(keep))
	var firstErr error
	var mu sync.Mutex
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := <-results[i]
			mu.Lock()
			defer mu.Unlock()
			if r.err != nil && firstErr == nil {
				firstErr = r.err
			}
			lists[i] = r.list
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	streams := make([]postings.Stream, len(lists))
	for i, l := range lists {
		streams[i] = postings.NewSliceStream(l)
	}
	return postings.MergeStreams(streams...), plan, nil
}

// fetchInline serves a term that never overflowed: the list streams
// from the term's home peer and is clipped on this side. With a cache,
// a hit skips the stream entirely and a miss tees the transfer into
// the cache as it completes.
func (m *Manager) fetchInline(ctx context.Context, root *Root, opts FetchOptions, plan *FetchPlan) (postings.Stream, *FetchPlan, error) {
	plan.Inline = true
	cc := cost.FromContext(ctx)
	if !typeMatches(root.Types, opts.AllowedTypes) {
		return postings.NewSliceStream(nil), plan, nil
	}
	plan.Postings = root.Count
	key := blockcache.Key{Term: root.Term, Gen: root.Gen}
	if m.cache != nil && root.Count > 0 {
		if l, ok := m.cache.Get(key); ok {
			plan.CacheHits++
			cc.AddCacheHits(1)
			if opts.Filter {
				l = l.ClipDocs(opts.FilterLo, opts.FilterHi)
			}
			return postings.NewSliceStream(l), plan, nil
		}
	}
	if len(root.Replicas) > 0 && root.Count > 0 {
		// A hot inline list advertises leased replicas on its root.
		// Probe them in shed-aware power-of-two-choices order, draining
		// eagerly (an inline list is at most one block), and trust a
		// copy only if it is as complete as the root promised — a
		// demoted or mid-push replica answers short and is skipped.
		for _, addr := range m.orderCandidates("", root.Replicas) {
			plan.Probes++
			cc.AddReplicaProbes(1)
			l, err := m.probeBlock(ctx, addr, root.Term, nil)
			if dht.IsOverload(err) {
				plan.Sheds++
				cc.AddShedRetries(1)
			}
			if err != nil || len(l) < root.Count {
				continue
			}
			cc.AddBlocksFetched(1)
			cc.AddWireBytes(int64(len(l)) * metrics.PostingWireBytes)
			if m.cache != nil {
				m.cache.Add(key, l)
			}
			if opts.Filter {
				l = l.ClipDocs(opts.FilterLo, opts.FilterHi)
			}
			return postings.NewSliceStream(l), plan, nil
		}
		// Every replica failed or was stale: the home peer is still the
		// source of truth, so fall through to the routed stream.
	}
	s, err := m.node.GetStreamContext(ctx, root.Term)
	if err != nil {
		return nil, nil, err
	}
	if root.Count > 0 {
		cc.AddBlocksFetched(1)
	}
	s = &costStream{s: s, c: cc}
	if m.cache != nil && root.Count > 0 {
		// The transfer is full-list regardless (the clip below is local),
		// so a completely drained stream is exactly the cacheable block.
		// No singleflight here: a consumer may abandon the stream, and a
		// flight without a guaranteed completion would hang its waiters.
		s = &teeStream{s: s, cache: m.cache, key: key}
	}
	if opts.Filter {
		s = clipStream(s, opts.FilterLo, opts.FilterHi)
	}
	return s, plan, nil
}

type fetched struct {
	list postings.List
	err  error
}

// planBatches splits leaders into per-block singles and per-owner
// batches of two or more blocks. Batching requires full-block transfers
// (allowed=false forces everything single); blocks with no recorded
// owner must locate, so they stay single too.
func planBatches[T any](leaders []T, allowed bool, ownerOf func(T) string) (singles []T, batches map[string][]T) {
	if !allowed {
		return leaders, nil
	}
	byOwner := map[string][]T{}
	for _, lb := range leaders {
		owner := ownerOf(lb)
		if owner == "" {
			singles = append(singles, lb)
			continue
		}
		byOwner[owner] = append(byOwner[owner], lb)
	}
	for owner, group := range byOwner {
		if len(group) < 2 {
			singles = append(singles, group...)
			continue
		}
		if batches == nil {
			batches = map[string][]T{}
		}
		batches[owner] = group
	}
	return singles, batches
}

// fetchBatch pulls a group of co-located blocks from their recorded
// owner in one round trip (a key the peer holds nothing for maps to an
// empty list).
func (m *Manager) fetchBatch(ctx context.Context, owner string, keys []string) (map[string]postings.List, error) {
	start := time.Now()
	contact := dht.Contact{ID: dht.PeerIDFromSeed(owner), Addr: owner}
	got, err := m.node.GetBatchContext(ctx, contact, keys, false, sid.DocKey{}, sid.DocKey{})
	dur := time.Since(start)
	m.node.Metrics().Observe(metrics.OpDPPFetch, dur)
	if err == nil {
		cc := cost.FromContext(ctx)
		for _, l := range got {
			if len(l) > 0 {
				cc.AddBlocksFetched(1)
				cc.AddWireBytes(int64(len(l)) * metrics.PostingWireBytes)
			}
		}
	}
	if sp := trace.FromContext(ctx); sp != nil {
		c := sp.Child("dpp:block-batch", start, dur)
		c.SetAttr("peer", owner)
		c.SetInt("blocks", int64(len(keys)))
		if err != nil {
			c.SetAttr("error", err.Error())
		}
	}
	return got, err
}

// orderCandidates builds the probe order over a block's known holders
// — the recorded owner plus any leased replica advertisements — using
// shed-aware power-of-two-choices over the load gauges piggybacked on
// past responses. A peer with no known gauge ranks as idle, so a fresh
// replica gets probed rather than starved.
func (m *Manager) orderCandidates(primary string, replicas []string) []string {
	seen := map[string]bool{}
	var addrs []string
	for _, a := range append([]string{primary}, replicas...) {
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		addrs = append(addrs, a)
	}
	if len(addrs) <= 1 {
		return addrs
	}
	cands := make([]replicate.PeerLoad, len(addrs))
	for i, a := range addrs {
		load, shed, known := m.node.PeerGauge(a)
		cands[i] = replicate.PeerLoad{Addr: a, Load: load, Shed: shed, Known: known}
	}
	m.selMu.Lock()
	order := replicate.Order(cands, m.sel)
	m.selMu.Unlock()
	out := make([]string, len(order))
	for i, idx := range order {
		out[i] = addrs[idx]
	}
	return out
}

// probeBlock opens a single-attempt stream for key at addr and drains
// it. Streams open optimistically, so an admission-gate rejection (or
// any other server-side error) surfaces here as a drain error — which
// is exactly what lets callers fail over to the next holder.
func (m *Manager) probeBlock(ctx context.Context, addr, key string, intervalBlob []byte) (postings.List, error) {
	c := dht.Contact{ID: dht.PeerIDFromSeed(addr), Addr: addr}
	s, err := m.node.OpenProcStreamOnceContext(ctx, c, key, ProcBlock, intervalBlob)
	if err != nil {
		return nil, err
	}
	return postings.Drain(s)
}

// fetchBlock drains a block's (possibly clipped) stream from one of its
// holders. Each known holder — the recorded owner plus any advertised
// replicas, in shed-aware power-of-two-choices order — gets a single
// probe; a failed or stale probe fails over to the next. Only when all
// probes miss does the fetch ROTATE to a freshly located holder and
// finally spend the full retry budget there, so a stale pointer or a
// shedding replica costs one failed probe instead of the whole budget.
func (m *Manager) fetchBlock(ctx context.Context, b BlockRef, intervalBlob []byte) (postings.List, error) {
	start := time.Now()
	var probes, sheds int64
	list, err := m.fetchBlockFailover(ctx, b, intervalBlob, &probes, &sheds)
	dur := time.Since(start)
	m.node.Metrics().Observe(metrics.OpDPPFetch, dur)
	cc := cost.FromContext(ctx)
	cc.AddReplicaProbes(probes)
	cc.AddShedRetries(sheds)
	if err == nil {
		cc.AddBlocksFetched(1)
		cc.AddWireBytes(int64(len(list)) * metrics.PostingWireBytes)
	}
	if sp := trace.FromContext(ctx); sp != nil {
		c := sp.Child("dpp:block", start, dur)
		c.SetAttr("block", b.Key)
		c.SetInt("postings", int64(len(list)))
		if probes > 0 {
			c.SetInt("probes", probes)
		}
		if sheds > 0 {
			c.SetInt("sheds", sheds)
		}
		if err != nil {
			c.SetAttr("error", err.Error())
		}
	}
	return list, err
}

func (m *Manager) fetchBlockFailover(ctx context.Context, b BlockRef, intervalBlob []byte, probes, sheds *int64) (postings.List, error) {
	tried := map[string]bool{}
	for _, addr := range m.orderCandidates(b.Owner, b.Replicas) {
		tried[addr] = true
		*probes++
		list, err := m.probeBlock(ctx, addr, b.Key, intervalBlob)
		if err != nil {
			if dht.IsOverload(err) {
				*sheds++
			}
			continue // dead, shed, or unreachable: next holder
		}
		if len(list) == 0 && b.Count > 0 && addr != b.Owner {
			// An advertised replica answering empty for a block that has
			// postings is stale (demoted, or its push never finished):
			// treat it as a miss, not as truth.
			continue
		}
		return list, nil
	}
	// Rotate: route the pseudo-key to the current holder and, if the
	// probes above did not already cover it, probe that once too before
	// spending retries anywhere.
	owner, err := m.node.LocateContext(ctx, b.Key)
	if err != nil {
		return nil, err
	}
	if !tried[owner.Addr] {
		*probes++
		if list, err := m.probeBlock(ctx, owner.Addr, b.Key, intervalBlob); err == nil {
			return list, nil
		} else if dht.IsOverload(err) {
			*sheds++
		}
	}
	// Every candidate failed its probe: the full retry/backoff budget
	// now goes to the routed holder (transient faults heal here).
	s, err := m.node.OpenProcStreamContext(ctx, owner, b.Key, ProcBlock, intervalBlob)
	if err != nil {
		return nil, err
	}
	return postings.Drain(s)
}

// costStream counts the wire bytes of a routed posting stream as the
// consumer pulls it — inline lists transfer lazily, so the bytes are
// only known posting by posting.
type costStream struct {
	s postings.Stream
	c *cost.Counters
}

func (cs *costStream) Next() (sid.Posting, error) {
	p, err := cs.s.Next()
	if err == nil {
		cs.c.AddWireBytes(metrics.PostingWireBytes)
	}
	return p, err
}

// teeStream accumulates a fully drained stream into the block cache.
type teeStream struct {
	s     postings.Stream
	cache *blockcache.Cache
	key   blockcache.Key
	acc   postings.List
	done  bool
}

func (t *teeStream) Next() (sid.Posting, error) {
	p, err := t.s.Next()
	if err == nil {
		t.acc = append(t.acc, p)
		return p, nil
	}
	if errors.Is(err, io.EOF) && !t.done {
		t.done = true
		t.cache.Add(t.key, t.acc)
	}
	return p, err
}

// clipStream filters a stream to the document interval (client side,
// for inline lists, where the transfer already happened and only the
// join input needs narrowing).
func clipStream(s postings.Stream, lo, hi sid.DocKey) postings.Stream {
	return &clippedStream{s: s, lo: lo, hi: hi}
}

type clippedStream struct {
	s      postings.Stream
	lo, hi sid.DocKey
}

func (c *clippedStream) Next() (sid.Posting, error) {
	for {
		p, err := c.s.Next()
		if err != nil {
			return p, err
		}
		k := p.Key()
		if k.Compare(c.lo) < 0 {
			continue
		}
		if k.Compare(c.hi) > 0 {
			continue
		}
		return p, nil
	}
}
