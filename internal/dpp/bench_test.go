package dpp

import (
	"testing"

	"kadop/internal/postings"
)

func BenchmarkDPPAppendAndSplit(b *testing.B) {
	c := newCluster(b, 12, Options{BlockSize: 512})
	l := seqPostings(256, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.managers[i%len(c.managers)].Append("l:author", l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDPPFetchParallel(b *testing.B) {
	c := newCluster(b, 12, Options{BlockSize: 256})
	want := seqPostings(4096, 32)
	if err := c.managers[0].Append("l:author", want); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _, err := c.managers[1].Fetch("l:author", FetchOptions{Parallel: 4})
		if err != nil {
			b.Fatal(err)
		}
		got, err := postings.Drain(s)
		if err != nil || len(got) != len(want) {
			b.Fatalf("drained %d (%v)", len(got), err)
		}
	}
}
