package dpp

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"kadop/internal/dht"
	"kadop/internal/postings"
	"kadop/internal/sid"
	"kadop/internal/store"
)

// cluster is a simulated network of peers, each running a DPP manager.
type cluster struct {
	net      *dht.Network
	nodes    []*dht.Node
	managers []*Manager
}

func newCluster(t testing.TB, peers int, opts Options) *cluster {
	t.Helper()
	c := &cluster{net: dht.NewNetwork()}
	for i := 0; i < peers; i++ {
		node, err := dht.NewNode(c.net.NewEndpoint(), store.NewMem(), dht.Config{})
		if err != nil {
			t.Fatal(err)
		}
		c.nodes = append(c.nodes, node)
		mgr, err := NewManager(node, opts)
		if err != nil {
			t.Fatal(err)
		}
		c.managers = append(c.managers, mgr)
	}
	for i := 1; i < peers; i++ {
		if err := c.nodes[i].Bootstrap(c.nodes[0].Self()); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range c.nodes {
		if _, err := n.Lookup(n.Self().ID); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func seqPostings(n int, docsize int) postings.List {
	l := make(postings.List, 0, n)
	for i := 0; i < n; i++ {
		doc := sid.DocID(i / docsize)
		s := uint32(2*(i%docsize) + 1)
		l = append(l, sid.Posting{Peer: 1, Doc: doc, SID: sid.SID{Start: s, End: s + 1, Level: 2}})
	}
	return l
}

func TestInlineListStaysInline(t *testing.T) {
	c := newCluster(t, 8, Options{BlockSize: 100})
	l := seqPostings(50, 10)
	if err := c.managers[0].Append("l:title", l); err != nil {
		t.Fatal(err)
	}
	root, err := c.managers[3].Root("l:title")
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Blocks) != 0 {
		t.Fatalf("small list should stay inline, got %d blocks", len(root.Blocks))
	}
	s, plan, err := c.managers[3].Fetch("l:title", FetchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Inline {
		t.Error("plan should report inline")
	}
	got, err := postings.Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatalf("inline fetch: %d vs %d", len(got), len(l))
	}
}

func TestOverflowSplitsAndFetchReassembles(t *testing.T) {
	c := newCluster(t, 10, Options{BlockSize: 200})
	want := seqPostings(1500, 20)
	// Append in chunks from several peers, exercising incremental splits.
	for i := 0; i < len(want); i += 120 {
		end := i + 120
		if end > len(want) {
			end = len(want)
		}
		if err := c.managers[i/120%len(c.managers)].Append("l:author", want[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	root, err := c.managers[5].Root("l:author")
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Blocks) < 4 {
		t.Fatalf("expected several blocks, got %d", len(root.Blocks))
	}
	// Conditions are ordered and sized within bounds.
	total := 0
	for i, b := range root.Blocks {
		if b.Count > 200 {
			t.Errorf("block %d holds %d postings, bound 200", i, b.Count)
		}
		total += b.Count
		if b.Hi.Compare(b.Lo) < 0 {
			t.Errorf("block %d condition inverted", i)
		}
		if i > 0 && root.Blocks[i-1].Hi.Compare(b.Lo) > 0 {
			t.Errorf("blocks %d and %d conditions overlap out of order", i-1, i)
		}
	}
	if total != len(want) {
		t.Fatalf("blocks hold %d postings, want %d", total, len(want))
	}
	// Full fetch reassembles the exact list.
	s, plan, err := c.managers[7].Fetch("l:author", FetchOptions{Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := postings.Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Fetched != len(root.Blocks) {
		t.Errorf("fetched %d of %d blocks without a filter", plan.Fetched, plan.Blocks)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fetch: %d vs %d postings", len(got), len(want))
	}
}

func TestBlocksDistributedAcrossPeers(t *testing.T) {
	c := newCluster(t, 12, Options{BlockSize: 100})
	want := seqPostings(1000, 20)
	if err := c.managers[0].Append("l:author", want); err != nil {
		t.Fatal(err)
	}
	// Count peers holding at least one overflow key.
	holders := 0
	for _, n := range c.nodes {
		terms, err := n.Store().Terms()
		if err != nil {
			t.Fatal(err)
		}
		for _, term := range terms {
			if len(term) > 9 && term[:9] == "overflow:" {
				holders++
				break
			}
		}
	}
	if holders < 3 {
		t.Fatalf("blocks concentrated on %d peers; partitioning should spread them", holders)
	}
}

func TestDocIntervalFilterSkipsBlocks(t *testing.T) {
	c := newCluster(t, 10, Options{BlockSize: 100})
	want := seqPostings(1000, 10) // docs 0..99
	if err := c.managers[0].Append("l:author", want); err != nil {
		t.Fatal(err)
	}
	lo := sid.DocKey{Peer: 1, Doc: 40}
	hi := sid.DocKey{Peer: 1, Doc: 49}
	s, plan, err := c.managers[2].Fetch("l:author", FetchOptions{
		Filter: true, FilterLo: lo, FilterHi: hi, Parallel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := postings.Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	wantClip := postings.List(want).ClipDocs(lo, hi)
	if !reflect.DeepEqual(got, postings.List(wantClip)) {
		t.Fatalf("clipped fetch: %d vs %d", len(got), len(wantClip))
	}
	if plan.Fetched >= plan.Blocks {
		t.Errorf("condition filter fetched all %d blocks", plan.Blocks)
	}
}

func TestDocIntervalClipWithoutConditionFilter(t *testing.T) {
	c := newCluster(t, 8, Options{BlockSize: 100})
	want := seqPostings(600, 10)
	if err := c.managers[0].Append("l:x", want); err != nil {
		t.Fatal(err)
	}
	lo := sid.DocKey{Peer: 1, Doc: 10}
	hi := sid.DocKey{Peer: 1, Doc: 19}
	s, plan, err := c.managers[1].Fetch("l:x", FetchOptions{
		Filter: true, FilterLo: lo, FilterHi: hi, NoConditionFilter: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := postings.Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	wantClip := postings.List(want).ClipDocs(lo, hi)
	if !reflect.DeepEqual(got, postings.List(wantClip)) {
		t.Fatalf("clip without condition filter: %d vs %d", len(got), len(wantClip))
	}
	if plan.Fetched != plan.Blocks {
		t.Errorf("ablation should fetch all blocks, fetched %d of %d", plan.Fetched, plan.Blocks)
	}
}

func TestRandomSplitAblation(t *testing.T) {
	c := newCluster(t, 10, Options{BlockSize: 150, RandomSplit: true})
	rng := rand.New(rand.NewSource(1))
	var want postings.List
	for i := 0; i < 900; i++ {
		s := uint32(rng.Intn(5000)*2 + 1)
		want = append(want, sid.Posting{Peer: 1, Doc: sid.DocID(rng.Intn(40)), SID: sid.SID{Start: s, End: s + 1, Level: 1}})
	}
	want.Sort()
	want = want.Dedup()
	for i := 0; i < len(want); i += 200 {
		end := i + 200
		if end > len(want) {
			end = len(want)
		}
		if err := c.managers[0].Append("l:r", want[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	root, err := c.managers[4].Root("l:r")
	if err != nil {
		t.Fatal(err)
	}
	if root.Ordered {
		t.Fatal("root should be marked unordered")
	}
	if len(root.Blocks) < 2 {
		t.Fatalf("blocks = %d", len(root.Blocks))
	}
	s, _, err := c.managers[4].Fetch("l:r", FetchOptions{Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := postings.Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("random-split fetch: %d vs %d", len(got), len(want))
	}
}

func TestRootCodecRoundTrip(t *testing.T) {
	r := &Root{
		Term:    "l:author",
		Ordered: true,
		Blocks: []BlockRef{
			{Lo: sid.Posting{Peer: 1, Doc: 2, SID: sid.SID{Start: 3, End: 4, Level: 5}},
				Hi:  sid.Posting{Peer: 6, Doc: 7, SID: sid.SID{Start: 8, End: 9, Level: 10}},
				Key: "overflow:1:l:author", Count: 42},
			{Lo: sid.Posting{Peer: 6, Doc: 8, SID: sid.SID{Start: 1, End: 2, Level: 0}},
				Hi:  sid.Posting{Peer: 9, Doc: 9, SID: sid.SID{Start: 5, End: 6, Level: 1}},
				Key: "overflow:2:l:author", Count: 17},
		},
	}
	got, err := decodeRoot(encodeRoot(r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("root round trip:\n got %+v\nwant %+v", got, r)
	}
	enc := encodeRoot(r)
	for cut := 0; cut < len(enc)-1; cut += 5 {
		if _, err := decodeRoot(enc[:cut]); err == nil {
			t.Fatalf("decodeRoot of %d bytes should fail", cut)
		}
	}
}

func TestIntervalCodec(t *testing.T) {
	lo := sid.DocKey{Peer: 3, Doc: 9}
	hi := sid.DocKey{Peer: 4, Doc: 1}
	l, h, clip, err := decodeInterval(encodeInterval(lo, hi))
	if err != nil || !clip || l != lo || h != hi {
		t.Fatalf("interval round trip: %v %v %v %v", l, h, clip, err)
	}
	if _, _, clip, err := decodeInterval(nil); err != nil || clip {
		t.Fatal("nil blob should mean no clipping")
	}
	if _, _, _, err := decodeInterval([]byte{1, 2, 3}); err == nil {
		t.Fatal("malformed interval should fail")
	}
}

func TestFetchUnknownTermIsEmpty(t *testing.T) {
	c := newCluster(t, 5, Options{})
	s, plan, err := c.managers[1].Fetch("l:nothing", FetchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := postings.Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || !plan.Inline {
		t.Fatalf("unknown term: %d postings, plan %+v", len(got), plan)
	}
}

func TestParallelFetchMatchesSerial(t *testing.T) {
	c := newCluster(t, 10, Options{BlockSize: 64})
	want := seqPostings(2000, 25)
	if err := c.managers[0].Append("w:xml", want); err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 8} {
		s, _, err := c.managers[3].Fetch("w:xml", FetchOptions{Parallel: par})
		if err != nil {
			t.Fatal(err)
		}
		got, err := postings.Drain(s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallel=%d: %d vs %d", par, len(got), len(want))
		}
	}
}

func TestManyTermsIndependentRoots(t *testing.T) {
	c := newCluster(t, 8, Options{BlockSize: 50})
	for i := 0; i < 5; i++ {
		term := fmt.Sprintf("l:t%d", i)
		if err := c.managers[0].Append(term, seqPostings(120+10*i, 10)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		term := fmt.Sprintf("l:t%d", i)
		s, _, err := c.managers[2].Fetch(term, FetchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := postings.Drain(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 120+10*i {
			t.Fatalf("%s: %d postings", term, len(got))
		}
	}
}

func TestDeleteReachesBlocks(t *testing.T) {
	c := newCluster(t, 10, Options{BlockSize: 100})
	want := seqPostings(500, 10)
	if err := c.managers[0].Append("l:author", want); err != nil {
		t.Fatal(err)
	}
	// Delete a slice from the middle (postings that live in blocks).
	victims := want[200:230]
	if err := c.managers[3].Delete("l:author", victims); err != nil {
		t.Fatal(err)
	}
	s, _, err := c.managers[5].Fetch("l:author", FetchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := postings.Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want)-len(victims) {
		t.Fatalf("after delete: %d postings, want %d", len(got), len(want)-len(victims))
	}
	left := map[sid.Posting]bool{}
	for _, p := range got {
		left[p] = true
	}
	for _, v := range victims {
		if left[v] {
			t.Fatalf("deleted posting %v still present", v)
		}
	}
}

func TestDeleteInlineList(t *testing.T) {
	c := newCluster(t, 6, Options{BlockSize: 1000})
	want := seqPostings(50, 10)
	if err := c.managers[0].Append("l:x", want); err != nil {
		t.Fatal(err)
	}
	if err := c.managers[1].Delete("l:x", want[:5]); err != nil {
		t.Fatal(err)
	}
	s, _, err := c.managers[2].Fetch("l:x", FetchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := postings.Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 45 {
		t.Fatalf("after inline delete: %d", len(got))
	}
}
