package dpp

import (
	"context"
	"testing"

	"kadop/internal/metrics"
)

// TestFetchBlockRotatesBeforeRetrying pins the replica-rotation fix: a
// block whose recorded owner is dead must be served by routing the
// pseudo-key to its current holder after a single failed probe, without
// spending any of the retry/backoff budget on the dead address.
func TestFetchBlockRotatesBeforeRetrying(t *testing.T) {
	c := newCluster(t, 8, Options{BlockSize: 50})
	want := seqPostings(300, 10)
	if err := c.managers[0].Append("l:author", want); err != nil {
		t.Fatal(err)
	}
	root, err := c.managers[2].Root("l:author")
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Blocks) < 2 {
		t.Fatalf("list should overflow into blocks, got %d", len(root.Blocks))
	}

	// Point the root's owner hint at an address that never existed — the
	// shape a stale hint takes after the holder departed.
	b := root.Blocks[0]
	b.Owner = "sim://no-such-peer"

	col := c.net.Collector
	base := col.Events(metrics.EventRetry)
	got, err := c.managers[2].fetchBlock(context.Background(), b, nil)
	if err != nil {
		t.Fatalf("fetch with stale owner hint: %v", err)
	}
	if len(got) != b.Count {
		t.Fatalf("rotated fetch returned %d postings, block holds %d", len(got), b.Count)
	}
	if retries := col.Events(metrics.EventRetry) - base; retries != 0 {
		t.Fatalf("stale owner hint burned %d retries; rotation must come first", retries)
	}
}
