package dpp

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"kadop/internal/sid"
)

func TestPersistRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dpp.json")
	m := &Manager{persistPath: path,
		roots: map[string]*Root{}, inlineTypes: map[string][]string{},
		inlineGen: map[string]uint64{}, next: 7}
	m.roots["l:a"] = &Root{
		Term: "l:a", Ordered: true,
		Blocks: []BlockRef{{
			Lo:  sid.Posting{Peer: 1, Doc: 2, SID: sid.SID{Start: 1, End: 2, Level: 1}},
			Hi:  sid.Posting{Peer: 1, Doc: 9, SID: sid.SID{Start: 5, End: 6, Level: 1}},
			Key: "overflow:1:l:a", Owner: "127.0.0.1:9999", Count: 42, Gen: 3,
			Types: []string{"dblp"},
		}},
	}
	m.inlineTypes["w:x"] = []string{"dblp"}
	m.inlineGen["w:x"] = 5
	if err := m.save(); err != nil {
		t.Fatal(err)
	}

	m2 := &Manager{persistPath: path,
		roots: map[string]*Root{}, inlineTypes: map[string][]string{},
		inlineGen: map[string]uint64{}}
	if err := m2.load(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m2.roots, m.roots) {
		t.Fatalf("roots did not round-trip: %+v vs %+v", m2.roots, m.roots)
	}
	if !reflect.DeepEqual(m2.inlineTypes, m.inlineTypes) || !reflect.DeepEqual(m2.inlineGen, m.inlineGen) {
		t.Fatal("inline metadata did not round-trip")
	}
	if m2.next != 7 {
		t.Fatalf("next = %d, want 7", m2.next)
	}
}

func TestPersistMissingFileIsEmpty(t *testing.T) {
	m := &Manager{persistPath: filepath.Join(t.TempDir(), "absent.json"),
		roots: map[string]*Root{}, inlineTypes: map[string][]string{},
		inlineGen: map[string]uint64{}}
	if err := m.load(); err != nil {
		t.Fatalf("load of missing file: %v", err)
	}
	if len(m.roots) != 0 || m.next != 0 {
		t.Fatal("missing file should load as empty state")
	}
}

func TestPersistCorruptFileFailsLoudly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := &Manager{persistPath: path, roots: map[string]*Root{}}
	if err := m.load(); err == nil {
		t.Fatal("corrupt state file should fail load")
	}
}
