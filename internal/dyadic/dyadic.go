// Package dyadic implements the dyadic interval decomposition that
// underlies Structural Bloom Filters (Section 5 of the paper).
//
// For a positive integer l, the dyadic decomposition of [1, 2^l] at
// level j (0 <= j <= l) partitions it into 2^(l-j) disjoint intervals of
// length 2^j. Any interval [x, y] within [1, 2^l] can be written as the
// union of at most 2l disjoint dyadic intervals, and there is a unique
// such representation with the fewest intervals — the dyadic cover
// D[x, y]. Dually, the dyadic containers Dc[x, y] are the dyadic
// intervals that contain [x, y]; there are at most l+1 of them, one per
// level, forming a chain under inclusion.
package dyadic

import "fmt"

// MaxLevel is the largest supported decomposition level: intervals live
// inside [1, 2^MaxLevel]. 32 levels cover any uint32 start/end position
// produced by the XML indexer.
const MaxLevel = 32

// Interval is a dyadic interval, identified by its level and its
// (0-based) index at that level: the interval covers positions
// [index*2^level + 1, (index+1)*2^level].
type Interval struct {
	Level uint8
	Index uint64
}

// Lo returns the smallest position in the interval (1-based).
func (iv Interval) Lo() uint64 { return iv.Index<<iv.Level + 1 }

// Hi returns the largest position in the interval.
func (iv Interval) Hi() uint64 { return (iv.Index + 1) << iv.Level }

// Width returns the number of positions the interval covers, 2^level.
func (iv Interval) Width() uint64 { return 1 << iv.Level }

// Contains reports whether iv contains the dyadic interval jv.
func (iv Interval) Contains(jv Interval) bool {
	if jv.Level > iv.Level {
		return false
	}
	return jv.Index>>(iv.Level-jv.Level) == iv.Index
}

// Parent returns the dyadic interval one level up that contains iv.
func (iv Interval) Parent() Interval {
	return Interval{Level: iv.Level + 1, Index: iv.Index >> 1}
}

// Key returns a canonical 64-bit encoding of the interval, used as hash
// input by the structural Bloom filters. Levels are at most MaxLevel and
// indices fit in 56 bits for any realistic document, so the packing is
// collision-free.
func (iv Interval) Key() uint64 {
	return uint64(iv.Level)<<56 | iv.Index&((1<<56)-1)
}

func (iv Interval) String() string {
	return fmt.Sprintf("[%d,%d]", iv.Lo(), iv.Hi())
}

// Cover appends the dyadic cover D[x, y] of the interval [x, y]
// (1-based, inclusive, x <= y) to dst and returns the extended slice.
// The cover is the unique minimal set of disjoint dyadic intervals whose
// union is [x, y], produced in left-to-right order.
//
// The greedy construction takes, at each step, the largest dyadic
// interval that starts at the current position and does not extend past
// y; this is the textbook decomposition and yields at most
// 2*ceil(log2(y-x+1)) intervals.
func Cover(dst []Interval, x, y uint64) []Interval {
	if x == 0 || y < x {
		return dst
	}
	pos := x
	for pos <= y {
		// Largest level at which a dyadic interval starts at pos:
		// the number of trailing zero bits of (pos-1).
		lvl := trailingZeros(pos - 1)
		// Shrink until the interval fits within [pos, y].
		for lvl > 0 && pos+(1<<lvl)-1 > y {
			lvl--
		}
		if pos+(1<<lvl)-1 > y {
			lvl = 0
		}
		iv := Interval{Level: lvl, Index: (pos - 1) >> lvl}
		dst = append(dst, iv)
		pos = iv.Hi() + 1
		if pos == 0 { // overflow guard at the top of the position space
			break
		}
	}
	return dst
}

func trailingZeros(v uint64) uint8 {
	if v == 0 {
		return MaxLevel
	}
	var n uint8
	for v&1 == 0 {
		v >>= 1
		n++
		if n >= MaxLevel {
			break
		}
	}
	return n
}

// CoverSize returns |D[x, y]| without materialising the cover.
func CoverSize(x, y uint64) int {
	if x == 0 || y < x {
		return 0
	}
	n := 0
	pos := x
	for pos <= y {
		lvl := trailingZeros(pos - 1)
		for lvl > 0 && pos+(1<<lvl)-1 > y {
			lvl--
		}
		if pos+(1<<lvl)-1 > y {
			lvl = 0
		}
		n++
		pos = (((pos-1)>>lvl)+1)<<lvl + 1
		if pos == 0 {
			break
		}
	}
	return n
}

// Containers appends the dyadic containers Dc[x, y] of [x, y] to dst, in
// increasing level order, up to and including maxLevel. The containers
// of an interval form a chain: the smallest dyadic interval containing
// [x, y], its parent, and so on up to [1, 2^maxLevel].
func Containers(dst []Interval, x, y uint64, maxLevel uint8) []Interval {
	if x == 0 || y < x {
		return dst
	}
	if maxLevel > MaxLevel {
		maxLevel = MaxLevel
	}
	// Find the smallest level at which x and y fall in the same dyadic
	// interval.
	lvl := uint8(0)
	for lvl <= maxLevel {
		if (x-1)>>lvl == (y-1)>>lvl {
			break
		}
		lvl++
	}
	for ; lvl <= maxLevel; lvl++ {
		dst = append(dst, Interval{Level: lvl, Index: (x - 1) >> lvl})
	}
	return dst
}

// SmallestContainer returns the smallest dyadic interval containing
// [x, y]. It reports ok=false for a malformed interval.
func SmallestContainer(x, y uint64) (Interval, bool) {
	if x == 0 || y < x {
		return Interval{}, false
	}
	lvl := uint8(0)
	for lvl <= MaxLevel {
		if (x-1)>>lvl == (y-1)>>lvl {
			return Interval{Level: lvl, Index: (x - 1) >> lvl}, true
		}
		lvl++
	}
	return Interval{}, false
}
