package dyadic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBounds(t *testing.T) {
	cases := []struct {
		iv     Interval
		lo, hi uint64
	}{
		{Interval{Level: 0, Index: 0}, 1, 1},
		{Interval{Level: 0, Index: 4}, 5, 5},
		{Interval{Level: 1, Index: 0}, 1, 2},
		{Interval{Level: 2, Index: 1}, 5, 8},
		{Interval{Level: 3, Index: 0}, 1, 8},
	}
	for _, c := range cases {
		if c.iv.Lo() != c.lo || c.iv.Hi() != c.hi {
			t.Errorf("%+v: Lo/Hi = %d,%d want %d,%d", c.iv, c.iv.Lo(), c.iv.Hi(), c.lo, c.hi)
		}
		if c.iv.Width() != c.hi-c.lo+1 {
			t.Errorf("%+v: Width = %d", c.iv, c.iv.Width())
		}
	}
}

func TestIntervalContains(t *testing.T) {
	big := Interval{Level: 3, Index: 0}   // [1,8]
	small := Interval{Level: 1, Index: 2} // [5,6]
	other := Interval{Level: 1, Index: 4} // [9,10]
	if !big.Contains(small) {
		t.Error("[1,8] contains [5,6]")
	}
	if big.Contains(other) {
		t.Error("[1,8] does not contain [9,10]")
	}
	if small.Contains(big) {
		t.Error("containment is not symmetric")
	}
	if !big.Contains(big) {
		t.Error("an interval contains itself")
	}
}

func TestParent(t *testing.T) {
	iv := Interval{Level: 1, Index: 3} // [7,8]
	p := iv.Parent()                   // [5,8]
	if p.Level != 2 || p.Index != 1 {
		t.Fatalf("Parent = %+v", p)
	}
	if !p.Contains(iv) {
		t.Fatal("parent must contain child")
	}
}

// TestCoverPaperExample checks the example from the paper: for l=3,
// D[1,7] = {[1,4],[5,6],[7,7]}.
func TestCoverPaperExample(t *testing.T) {
	cov := Cover(nil, 1, 7)
	want := []Interval{
		{Level: 2, Index: 0}, // [1,4]
		{Level: 1, Index: 2}, // [5,6]
		{Level: 0, Index: 6}, // [7,7]
	}
	if len(cov) != len(want) {
		t.Fatalf("Cover(1,7) = %v", cov)
	}
	for i := range want {
		if cov[i] != want[i] {
			t.Fatalf("Cover(1,7)[%d] = %v, want %v", i, cov[i], want[i])
		}
	}
}

// TestContainersPaperExample checks the paper's example
// Dc[3,4] = {[3,4],[1,4],[1,8]} (restricted to maxLevel=3).
func TestContainersPaperExample(t *testing.T) {
	cs := Containers(nil, 3, 4, 3)
	want := []Interval{
		{Level: 1, Index: 1}, // [3,4]
		{Level: 2, Index: 0}, // [1,4]
		{Level: 3, Index: 0}, // [1,8]
	}
	if len(cs) != len(want) {
		t.Fatalf("Containers(3,4) = %v", cs)
	}
	for i := range want {
		if cs[i] != want[i] {
			t.Fatalf("Containers(3,4)[%d] = %v, want %v", i, cs[i], want[i])
		}
	}
}

func coverIsValid(t *testing.T, x, y uint64, cov []Interval) {
	t.Helper()
	// Disjoint, ordered, and exactly covering [x,y].
	pos := x
	for _, iv := range cov {
		if iv.Lo() != pos {
			t.Fatalf("Cover(%d,%d): gap or overlap at %v (pos=%d)", x, y, iv, pos)
		}
		pos = iv.Hi() + 1
	}
	if pos != y+1 {
		t.Fatalf("Cover(%d,%d): ends at %d", x, y, pos-1)
	}
}

func TestCoverExhaustiveSmall(t *testing.T) {
	for x := uint64(1); x <= 64; x++ {
		for y := x; y <= 64; y++ {
			cov := Cover(nil, x, y)
			coverIsValid(t, x, y, cov)
			if got := CoverSize(x, y); got != len(cov) {
				t.Fatalf("CoverSize(%d,%d) = %d, len(Cover) = %d", x, y, got, len(cov))
			}
			// Minimality bound: |D[x,y]| <= 2*l where 2^l >= width.
			width := y - x + 1
			l := 0
			for (uint64(1) << l) < width {
				l++
			}
			bound := 2 * l
			if bound == 0 {
				bound = 1
			}
			if len(cov) > bound {
				t.Fatalf("Cover(%d,%d) has %d intervals, bound %d", x, y, len(cov), bound)
			}
		}
	}
}

func TestCoverDegenerate(t *testing.T) {
	if c := Cover(nil, 0, 5); len(c) != 0 {
		t.Error("Cover with x=0 should be empty")
	}
	if c := Cover(nil, 5, 4); len(c) != 0 {
		t.Error("Cover with y<x should be empty")
	}
	if CoverSize(0, 5) != 0 || CoverSize(5, 4) != 0 {
		t.Error("CoverSize degenerate cases should be 0")
	}
}

func TestCoverQuickRandom(t *testing.T) {
	f := func(a, b uint32) bool {
		x := uint64(a%100000) + 1
		y := x + uint64(b%10000)
		cov := Cover(nil, x, y)
		pos := x
		for _, iv := range cov {
			if iv.Lo() != pos {
				return false
			}
			pos = iv.Hi() + 1
		}
		return pos == y+1 && CoverSize(x, y) == len(cov)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestContainersChain(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		x := uint64(rng.Intn(1<<16)) + 1
		y := x + uint64(rng.Intn(1<<10))
		cs := Containers(nil, x, y, 20)
		if len(cs) == 0 {
			t.Fatalf("Containers(%d,%d) empty", x, y)
		}
		for i, iv := range cs {
			if iv.Lo() > x || iv.Hi() < y {
				t.Fatalf("Containers(%d,%d)[%d] = %v does not contain the interval", x, y, i, iv)
			}
			if i > 0 && !iv.Contains(cs[i-1]) {
				t.Fatalf("containers do not form a chain at %d", i)
			}
		}
		// The chain extends to maxLevel.
		if cs[len(cs)-1].Level != 20 {
			t.Fatalf("chain should reach maxLevel, got %d", cs[len(cs)-1].Level)
		}
	}
}

// TestCoverContainerDuality verifies the structural-join property the
// Bloom filters rely on (Theorem 1 machinery): [x2,y2] is contained in
// [x1,y1] iff every interval of D[x2,y2] has a container in D[x1,y1].
func TestCoverContainerDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 500; trial++ {
		x1 := uint64(rng.Intn(500)) + 1
		y1 := x1 + uint64(rng.Intn(200))
		x2 := uint64(rng.Intn(500)) + 1
		y2 := x2 + uint64(rng.Intn(200))
		contained := x1 <= x2 && y2 <= y1

		d1 := Cover(nil, x1, y1)
		d2 := Cover(nil, x2, y2)
		all := true
		for _, iv := range d2 {
			found := false
			for _, jv := range d1 {
				if jv.Contains(iv) {
					found = true
					break
				}
			}
			if !found {
				all = false
				break
			}
		}
		if all != contained {
			t.Fatalf("duality violated: [%d,%d] in [%d,%d]: contained=%v coverCheck=%v",
				x2, y2, x1, y1, contained, all)
		}
	}
}

func TestSmallestContainer(t *testing.T) {
	iv, ok := SmallestContainer(3, 4)
	if !ok || iv != (Interval{Level: 1, Index: 1}) {
		t.Fatalf("SmallestContainer(3,4) = %v %v", iv, ok)
	}
	iv, ok = SmallestContainer(4, 5)
	// 4 and 5 straddle a level-1 and level-2 boundary: [1,8] is smallest.
	if !ok || iv != (Interval{Level: 3, Index: 0}) {
		t.Fatalf("SmallestContainer(4,5) = %v %v", iv, ok)
	}
	if _, ok := SmallestContainer(0, 3); ok {
		t.Fatal("SmallestContainer of malformed interval should fail")
	}
}

func TestKeyUnique(t *testing.T) {
	seen := make(map[uint64]Interval)
	for lvl := uint8(0); lvl <= 10; lvl++ {
		for idx := uint64(0); idx < 64; idx++ {
			iv := Interval{Level: lvl, Index: idx}
			k := iv.Key()
			if prev, dup := seen[k]; dup {
				t.Fatalf("Key collision: %v and %v", prev, iv)
			}
			seen[k] = iv
		}
	}
}

func TestString(t *testing.T) {
	if s := (Interval{Level: 2, Index: 1}).String(); s != "[5,8]" {
		t.Errorf("String = %q", s)
	}
}
