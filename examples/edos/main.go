// Edos: software-distribution metadata shared by developers.
//
// The paper's driving application (Section 1) is Edos: the metadata of
// a Linux distribution — thousands of packages and their dependency
// records — shared among a population of developers. This example
// models it: each developer peer publishes package metadata documents,
// and queries locate packages by name, dependency or maintainer across
// the whole distribution, including across several simultaneous
// versions of the distribution.
//
//	go run ./examples/edos
package main

import (
	"fmt"
	"log"

	"kadop"
)

// pkg renders one package's metadata document.
func pkg(name, version, section, maintainer string, depends []string) string {
	deps := ""
	for _, d := range depends {
		deps += fmt.Sprintf("<depends>%s</depends>", d)
	}
	return fmt.Sprintf(`<package>
  <name>%s</name>
  <version>%s</version>
  <section>%s</section>
  <maintainer>%s</maintainer>
  %s
</package>`, name, version, section, maintainer, deps)
}

func main() {
	const developers = 8
	cluster, err := kadop.NewSimCluster(developers, kadop.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Two simultaneous versions of the distribution, as Edos requires.
	type rel struct{ version, label string }
	releases := []rel{{"2006.0", "stable"}, {"2007.0", "devel"}}
	names := []string{"glibc", "gcc", "coreutils", "bash", "kadop", "rpm", "urpmi", "kernel"}
	maintainers := []string{"alice", "bob", "carol", "dave"}
	deps := map[string][]string{
		"gcc": {"glibc"}, "coreutils": {"glibc"}, "bash": {"glibc", "coreutils"},
		"kadop": {"glibc", "bash"}, "rpm": {"glibc"}, "urpmi": {"rpm"}, "kernel": nil,
		"glibc": nil,
	}

	n := 0
	for _, r := range releases {
		for i, name := range names {
			doc := pkg(name, r.version, r.label, maintainers[i%len(maintainers)], deps[name])
			uri := fmt.Sprintf("%s/%s.xml", r.version, name)
			if _, err := cluster.Peer(n%developers).PublishXML([]byte(doc), uri); err != nil {
				log.Fatal(err)
			}
			n++
		}
	}
	fmt.Printf("published %d package records across %d developer peers\n\n", n, developers)

	queries := []struct {
		what  string
		query string
	}{
		{"packages depending on glibc", `//package[contains(.//depends,'glibc')]//name`},
		{"everything maintained by alice", `//package//maintainer[. contains "alice"]`},
		{"bash across all releases", `//package[//version]//name[. contains "bash"]`},
		{"devel-section packages", `//package[contains(.//section,'devel')]//name`},
	}
	for _, c := range queries {
		q := kadop.MustParseQuery(c.query)
		res, err := cluster.Peer(developers-1).Query(q, kadop.QueryOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%s):\n", c.what, c.query)
		for _, m := range res.Matches {
			uri, err := cluster.Peer(developers - 1).URI(m.Doc)
			if err != nil {
				uri = "?"
			}
			fmt.Printf("  %s\n", uri)
		}
		if len(res.Matches) == 0 {
			fmt.Println("  (none)")
		}
		fmt.Println()
	}
}
