// Intensional data: the Fundex over documents with includes.
//
// Bibliographic records keep their abstracts in separate files,
// referenced with external entities (the paper's Figure 8 setting).
// The example publishes the same small collection under each of the
// five Section 6 modes and runs a query whose answer lies partly inside
// the referenced files, showing what each mode can and cannot find.
//
//	go run ./examples/intensional
package main

import (
	"fmt"
	"log"

	"kadop"
)

func main() {
	// Shared abstract files, resolvable by every peer.
	files := map[string][]byte{
		"a1.xml": []byte(`<abstract>a graph algorithm for routing tables</abstract>`),
		"a2.xml": []byte(`<abstract>indexing xml documents with structural identifiers</abstract>`),
		"a3.xml": []byte(`<abstract>another study of graph colourings</abstract>`),
	}
	resolve := func(uri string) ([]byte, error) {
		b, ok := files[uri]
		if !ok {
			return nil, fmt.Errorf("no such file %q", uri)
		}
		return b, nil
	}
	host := func(title, abstract string) string {
		return fmt.Sprintf(`<!DOCTYPE article [<!ENTITY abs SYSTEM "%s">]>
<article><title>%s</title>&abs;</article>`, abstract, title)
	}
	hosts := map[string]string{
		"p1.xml": host("routing in overlay networks", "a1.xml"),
		"p2.xml": host("xml indexing", "a2.xml"),
		"p3.xml": host("colour theory", "a3.xml"),
	}

	// "Retrieve the bibliography references containing the word graph in
	// the abstract" — the motivating query of Section 6.
	query := kadop.MustParseQuery(`//article[contains(.//abstract,'graph')]`)
	fmt.Printf("query: %s\n\n", query)

	for _, mode := range []kadop.IntensionalMode{
		kadop.Naive, kadop.Brutal, kadop.Fundex, kadop.Inline, kadop.Representative,
	} {
		cluster, err := kadop.NewSimCluster(4, kadop.Config{})
		if err != nil {
			log.Fatal(err)
		}
		var ixs []*kadop.Intensional
		for i := 0; i < 4; i++ {
			ixs = append(ixs, kadop.NewIntensional(cluster.Peer(i), mode, resolve))
		}
		i := 0
		for uri, xml := range hosts {
			if _, err := ixs[i%4].Publish([]byte(xml), uri); err != nil {
				log.Fatalf("%v: publish %s: %v", mode, uri, err)
			}
			i++
		}
		ans, err := ixs[3].Query(query)
		if err != nil {
			log.Fatalf("%v: query: %v", mode, err)
		}
		fmt.Printf("%-14s -> %d answer tuples, %d candidate documents, %d rev lookups\n",
			mode, len(ans.Matches), len(ans.Docs), ans.RevLookups)
		for _, d := range ans.Docs {
			uri, err := ixs[3].Peer().URI(d)
			if err != nil {
				continue
			}
			fmt.Printf("     candidate: %s\n", uri)
		}
		cluster.Close()
	}
	fmt.Println("\nnaive misses both answers; brutal contacts every intensional document;")
	fmt.Println("fundex, inline and representative find exactly p1.xml and p3.xml.")
}
