// Content sharing: an ad-hoc bibliography community with skewed terms.
//
// This is the scenario the paper's introduction motivates — a community
// sharing domain documents through a DHT — at a scale where the paper's
// problems appear: popular terms (author, title) grow posting lists far
// larger than the rest, so this example enables the DPP and compares
// the Bloom-reducer strategies' traffic on a selective query.
//
//	go run ./examples/contentsharing
package main

import (
	"fmt"
	"log"

	"kadop"
	"kadop/internal/workload"
)

func main() {
	const peers = 16
	cluster, err := kadop.NewSimCluster(peers, kadop.Config{
		UseDPP: true,
		DPP:    kadop.DPPOptions{BlockSize: 512},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// A DBLP-like corpus: Zipf-skewed authors, a rare author "Ullman".
	docs := workload.DBLP{Seed: 42, Records: 1200}.Documents()
	fmt.Printf("publishing %d documents (%.2f MB) from 4 community members...\n",
		len(docs), float64(workload.SizeBytes(docs))/1e6)
	for i, d := range docs {
		if _, err := cluster.Peer(i%4).Publish(d.Doc, d.URI); err != nil {
			log.Fatal(err)
		}
	}

	q := kadop.MustParseQuery(`//article//author[. contains "Ullman"]`)
	fmt.Printf("\nquery: %s\n\n", q)

	type plan struct {
		name     string
		strategy kadop.Strategy
	}
	for _, p := range []plan{
		{"conventional (full lists)", kadop.Conventional},
		{"AB reducer", kadop.ABReducer},
		{"DB reducer", kadop.DBReducer},
		{"Bloom reducer (hybrid)", kadop.BloomReducer},
	} {
		cluster.ResetTraffic()
		res, err := cluster.Peer(peers-1).Query(q, kadop.QueryOptions{Strategy: p.strategy})
		if err != nil {
			log.Fatal(err)
		}
		post := cluster.TrafficBytes("postings")
		filt := cluster.TrafficBytes("filters-ab") + cluster.TrafficBytes("filters-db")
		fmt.Printf("%-28s %3d answers, postings %7d B, filters %6d B, time %v\n",
			p.name, len(res.Matches), post, filt, res.Total.Round(1000))
	}

	// The DPP at work: index-only query showing the fetch plans.
	res, err := cluster.Peer(peers-1).Query(q, kadop.QueryOptions{IndexOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDPP fetch plans for the conventional strategy:")
	for _, pl := range res.Plans {
		if pl.Inline {
			fmt.Printf("  %-12s inline at its home peer\n", pl.Term)
			continue
		}
		fmt.Printf("  %-12s %d blocks, %d fetched after document-interval filtering\n",
			pl.Term, pl.Blocks, pl.Fetched)
	}
}
