// Quickstart: a three-peer KadoP network in one process.
//
// Three peers join a simulated DHT; one publishes a small bibliography;
// another runs tree-pattern queries, showing the two-phase evaluation
// (index query, then answers from the document peers).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kadop"
)

const bibliography = `<dblp>
  <article>
    <author>Jeffrey Ullman</author>
    <title>Principles of database and knowledge base systems</title>
    <year>1988</year>
  </article>
  <article>
    <author>Serge Abiteboul</author>
    <author>Ioana Manolescu</author>
    <title>XML processing in DHT networks</title>
    <year>2008</year>
  </article>
  <inproceedings>
    <author>Jeffrey Ullman</author>
    <title>Information integration using logical views</title>
    <year>1997</year>
  </inproceedings>
</dblp>`

func main() {
	// A simulated network: the same API drives real TCP deployments
	// (see cmd/kadop-peer), but one process is enough to see the system
	// work end to end.
	cluster, err := kadop.NewSimCluster(3, kadop.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Peer 0 publishes: the document stays there; its index postings
	// are distributed across all three peers by term.
	key, err := cluster.Peer(0).PublishXML([]byte(bibliography), "bibliography.xml")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published bibliography.xml as %v\n\n", key)

	// Peer 2 queries. Phase one joins the terms' posting lists from
	// their home peers; phase two fetches the answers from peer 0.
	for _, qs := range []string{
		`//article//author`,
		`//article//author[. contains "Ullman"]`,
		`//dblp//title[. contains "xml"]`,
		`//inproceedings[//year]//title`,
	} {
		q := kadop.MustParseQuery(qs)
		res, err := cluster.Peer(2).Query(q, kadop.QueryOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-48s -> %d answers (index %v, total %v)\n",
			qs, len(res.Matches), res.IndexTime.Round(1000), res.Total.Round(1000))
		for _, m := range res.Matches {
			fmt.Printf("    doc %v, elements", m.Doc)
			for _, p := range m.Postings {
				fmt.Printf(" %v", p.SID)
			}
			fmt.Println()
		}
	}

	fmt.Println("\ntraffic by class:")
	fmt.Print(cluster.TrafficReport())
}
